package impir

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"github.com/impir/impir/internal/cluster"
	"github.com/impir/impir/internal/fanout"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
)

// Sharded deployments: the topology, planning, and database-carving
// layer lives in internal/cluster; the root package re-exports it here
// together with ClusterClient, the network client that drives a sharded
// deployment. Open returns a *ClusterClient for multi-shard deployment
// manifests.

// ShardManifest describes a sharded deployment's topology: contiguous
// row-range shards, each served by a cohort of ≥ 2 non-colluding
// replicas. Manifests round-trip through JSON (ParseManifest /
// LoadManifest / ShardManifest.JSON) for command-line flags and config
// files.
//
// ShardManifest predates the unified Deployment manifest, which
// additionally expresses replica sets per party and keyword tables;
// every ShardManifest lifts losslessly via DeploymentFromManifest, and
// ParseDeployment accepts shard-manifest JSON directly.
type ShardManifest = cluster.Manifest

// ClusterShard is one row-range shard of a ShardManifest.
type ClusterShard = cluster.Shard

// ClusterStats is a snapshot of a ClusterClient's per-shard counters.
type ClusterStats = metrics.ClusterStats

// ParseManifest decodes and validates a JSON shard manifest.
func ParseManifest(data []byte) (ShardManifest, error) { return cluster.Parse(data) }

// LoadManifest reads and validates a JSON shard manifest file.
func LoadManifest(path string) (ShardManifest, error) { return cluster.Load(path) }

// UniformManifest builds a manifest splitting numRecords records of
// recordSize bytes across len(cohorts) shards with sizes differing by
// at most one (ragged last shard when the division is uneven).
func UniformManifest(numRecords uint64, recordSize int, cohorts [][]string) (ShardManifest, error) {
	return cluster.Uniform(numRecords, recordSize, cohorts)
}

// SplitDB carves a database into shards contiguous row-range replicas
// (sizes differ by at most one; ragged last shard when N % shards != 0).
// Load each returned database into every replica of the matching
// cohort.
func SplitDB(db *DB, shards int) ([]*DB, error) { return cluster.SplitDB(db, shards) }

// SplitDBByManifest carves a database along a manifest's shard ranges.
func SplitDBByManifest(db *DB, m ShardManifest) ([]*DB, error) {
	return cluster.SplitByManifest(db, m)
}

// ClusterClient is a connection to a sharded PIR deployment: one Client
// per shard cohort, behind one policy engine. Every logical retrieval
// fans one sub-query out to EVERY cohort concurrently — the real one to
// the owning shard, well-formed dummies elsewhere — so retrieval
// latency is the slowest shard's round trip and no cohort learns which
// shard owned the record (each sees an ordinary PIR query against its
// own shard either way). Within each cohort, each party's share is
// hedged across that party's replica set exactly as in a flat Client.
//
// Like Client, a retrieval aborts as a whole when any shard fails or
// the context is cancelled: sub-results from the remaining shards are
// discarded, never returned. Connections poisoned by an abandoned
// exchange are transparently redialed by the underlying per-cohort
// clients.
//
// Interceptors, per-call options, and retry budgets apply to the
// LOGICAL operation: one Retrieve through a ClusterClient runs its
// interceptor chain once and counts one retry per whole-cluster
// re-fan-out, however many shards it spans.
//
// A ClusterClient may be shared by concurrent goroutines.
type ClusterClient struct {
	deployment Deployment
	plan       ShardManifest // planner view: ranges + one address per party
	shards     []*Client
	policy     policy

	mu    sync.Mutex
	stats metrics.StoreStats
}

// DialCluster connects to every cohort of a sharded deployment.
//
// Deprecated: use Open with a Deployment (DeploymentFromManifest(m) for
// this exact topology); Open adds replica sets, hedging, per-call
// policy, and the interceptor chain, and returns the same
// *ClusterClient for multi-shard deployments.
func DialCluster(ctx context.Context, m ShardManifest, opts ...ClientOption) (*ClusterClient, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return openCluster(ctx, DeploymentFromManifest(m), resolveClientConfig(opts))
}

// openCluster connects to every cohort of a multi-shard deployment
// concurrently — each cohort through the flat open path, with its
// replica cross-checks and manifest geometry validation.
func openCluster(ctx context.Context, d Deployment, cfg clientConfig) (*ClusterClient, error) {
	plan, err := d.ShardManifest()
	if err != nil {
		return nil, err
	}
	c := &ClusterClient{deployment: d, plan: plan, shards: make([]*Client, len(d.Shards))}
	c.policy = cfg.newPolicy(func() {
		c.bump(func(st *metrics.StoreStats) { st.Retries++ })
	})
	c.stats.Shards = make([]metrics.ShardStats, len(d.Shards))

	shardCfg := cfg.shardConfig()
	g, gctx := fanout.WithContext(ctx)
	for i, shard := range d.Shards {
		g.Go(func() error {
			cli, err := openFlat(gctx, shard, d.RecordSize, shardCfg)
			if err != nil {
				return fmt.Errorf("impir: shard %d: %w", i, err)
			}
			c.shards[i] = cli
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func nextPow2(n uint64) uint64 {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len64(n-1)
}

// NumRecords returns the total (unpadded) record count of the cluster.
func (c *ClusterClient) NumRecords() uint64 { return c.deployment.NumRecords() }

// RecordSize returns the record size in bytes.
func (c *ClusterClient) RecordSize() int { return c.deployment.RecordSize }

// Shards returns the shard count.
func (c *ClusterClient) Shards() int { return len(c.shards) }

// Manifest returns the deployment topology as a shard manifest (one
// representative address per party; see Deployment for the full
// replica-set view).
func (c *ClusterClient) Manifest() ShardManifest { return c.plan }

// Deployment returns the full deployment manifest the client was
// opened with.
func (c *ClusterClient) Deployment() Deployment { return c.deployment }

// Retrieve privately fetches the record at a global index: one
// well-formed sub-query per shard cohort, all concurrent, the owning
// shard's reconstruction returned. No cohort learns the index — each
// sees an ordinary PIR query against its own shard — and no cohort
// learns whether it was the one that mattered.
func (c *ClusterClient) Retrieve(ctx context.Context, global uint64, opts ...CallOption) ([]byte, error) {
	co := c.policy.resolve(opts)
	if _, _, err := c.plan.Locate(global); err != nil {
		return nil, err
	}
	rec, err := c.policy.doUnary(ctx, co, global, func(ctx context.Context, global uint64) ([]byte, error) {
		return c.retrieve(ctx, co, global)
	})
	c.bump(func(st *metrics.StoreStats) {
		if err == nil {
			st.Retrievals++
		} else {
			countFailure(st, err)
		}
	})
	return rec, err
}

func (c *ClusterClient) retrieve(ctx context.Context, co callOptions, global uint64) ([]byte, error) {
	plan, err := c.plan.PlanQuery(global)
	if err != nil {
		return nil, err
	}
	span := obs.SpanFromContext(ctx)
	recs := make([][]byte, len(c.shards))
	g, gctx := fanout.WithContext(ctx)
	for s := range c.shards {
		g.Go(func() error {
			// The dummy marking exists ONLY in this client-side span: the
			// sub-query each non-owner shard receives is indistinguishable
			// from a real one, and the wire trace context carries no hint.
			ssp := span.StartChild("shard")
			ssp.SetAttrInt("shard", int64(s))
			ssp.SetAttrBool("dummy", s != plan.Owner)
			start := time.Now()
			rec, err := c.shards[s].retrieve(obs.ContextWithSpan(gctx, ssp), co, plan.Locals[s])
			c.record(s, 1, 0, time.Since(start), err)
			if err != nil {
				ssp.SetAttr("error", err.Error())
				ssp.End()
				return fmt.Errorf("impir: shard %d: %w", s, err)
			}
			ssp.End()
			recs[s] = rec
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return recs[plan.Owner], nil
}

// RetrieveBatch privately fetches several records by global index in
// one round trip per cohort. Every cohort receives a batch of exactly
// len(globals) sub-queries — real where it owns the record, dummies
// elsewhere — so even the batch shape is identical across shards and
// leaks nothing about how the targets distribute. An empty batch is a
// no-op returning an empty (non-nil) slice without touching any
// cohort, matching Client.RetrieveBatch.
func (c *ClusterClient) RetrieveBatch(ctx context.Context, globals []uint64, opts ...CallOption) ([][]byte, error) {
	if len(globals) == 0 {
		return [][]byte{}, nil
	}
	co := c.policy.resolve(opts)
	for _, g := range globals {
		if _, _, err := c.plan.Locate(g); err != nil {
			return nil, err
		}
	}
	recs, err := c.policy.doBatch(ctx, co, globals, func(ctx context.Context, globals []uint64) ([][]byte, error) {
		return c.retrieveBatch(ctx, co, globals)
	})
	c.bump(func(st *metrics.StoreStats) {
		if err == nil {
			st.BatchRetrievals++
		} else {
			countFailure(st, err)
		}
	})
	return recs, err
}

func (c *ClusterClient) retrieveBatch(ctx context.Context, co callOptions, globals []uint64) ([][]byte, error) {
	plan, err := c.plan.PlanBatch(globals)
	if err != nil {
		return nil, err
	}
	span := obs.SpanFromContext(ctx)
	owned := make([]int, len(c.shards))
	if span != nil {
		for _, o := range plan.Owners {
			owned[o]++
		}
	}
	perShard := make([][][]byte, len(c.shards))
	g, gctx := fanout.WithContext(ctx)
	for s := range c.shards {
		g.Go(func() error {
			// Client-side only, as in retrieve: every shard receives the
			// same batch shape regardless of how many items it owns.
			ssp := span.StartChild("shard")
			ssp.SetAttrInt("shard", int64(s))
			ssp.SetAttrInt("real", int64(owned[s]))
			ssp.SetAttrBool("dummy", owned[s] == 0)
			start := time.Now()
			recs, err := c.shards[s].retrieveBatch(obs.ContextWithSpan(gctx, ssp), co, plan.Locals[s])
			c.record(s, 0, uint64(len(globals)), time.Since(start), err)
			if err != nil {
				ssp.SetAttr("error", err.Error())
				ssp.End()
				return fmt.Errorf("impir: shard %d: %w", s, err)
			}
			ssp.End()
			perShard[s] = recs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(globals))
	for i, owner := range plan.Owners {
		out[i] = perShard[owner][i]
	}
	return out, nil
}

// retrieveBatchShards fans PRE-PLANNED per-shard local sub-batches out
// to every cohort concurrently and returns each cohort's answers. It is
// the transport layer of the coded batch path (CodedStore), which
// plans its own per-shard locals — a constant buckets/shard + overflow
// sub-queries per cohort — instead of PlanBatch's uniform fan-out of
// the whole batch to every shard; that routing is where the coded
// per-server win comes from. Every cohort still receives an
// equal-length batch, so the shape remains identical across shards.
func (c *ClusterClient) retrieveBatchShards(ctx context.Context, co callOptions, locals [][]uint64) ([][][]byte, error) {
	if len(locals) != len(c.shards) {
		return nil, fmt.Errorf("impir: %d shard batches for %d shards", len(locals), len(c.shards))
	}
	span := obs.SpanFromContext(ctx)
	perShard := make([][][]byte, len(c.shards))
	g, gctx := fanout.WithContext(ctx)
	for s := range c.shards {
		g.Go(func() error {
			// As in retrieveBatch, which slots are real exists only
			// client-side; each cohort sees an ordinary fixed-shape batch.
			ssp := span.StartChild("shard")
			ssp.SetAttrInt("shard", int64(s))
			ssp.SetAttrBool("coded", true)
			start := time.Now()
			recs, err := c.shards[s].retrieveBatch(obs.ContextWithSpan(gctx, ssp), co, locals[s])
			c.record(s, 0, uint64(len(locals[s])), time.Since(start), err)
			if err != nil {
				ssp.SetAttr("error", err.Error())
				ssp.End()
				return fmt.Errorf("impir: shard %d: %w", s, err)
			}
			ssp.End()
			perShard[s] = recs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return perShard, nil
}

// Update routes a bulk record update, keyed by global index, to the
// owning cohorts only: each dirty row travels to exactly the shard that
// holds it — and there to EVERY replica of every party — and each
// cohort applies its subset atomically under the server-side epoch
// quiescing, so live retrievals never observe a torn update. Updates
// are public operator actions — routing them leaks nothing the cohort
// would not learn by applying them — and servers reject them unless
// started with ServerConfig.AllowWireUpdates.
//
// Cohorts with no dirty rows are not contacted. The affected cohorts
// update concurrently; the first failure cancels the rest, which can
// leave cohorts (or replicas within one) diverged — retry the same
// update until it succeeds everywhere, as with Client.Update (a
// WithRetries budget does this transparently for transient failures).
func (c *ClusterClient) Update(ctx context.Context, updates map[uint64][]byte, opts ...CallOption) error {
	routed, err := c.plan.RouteUpdate(updates)
	if err != nil {
		return err
	}
	co := c.policy.resolve(opts)
	err = c.policy.doUpdate(ctx, co, func(ctx context.Context) error {
		g, gctx := fanout.WithContext(ctx)
		for s, sub := range routed {
			g.Go(func() error {
				if err := c.shards[s].updateCore(gctx, sub); err != nil {
					// Failed sub-attempts count per attempt (retries
					// included) — they are real wire traffic.
					c.bump(func(st *metrics.StoreStats) { st.Shards[s].Errors++ })
					return fmt.Errorf("impir: shard %d: %w", s, err)
				}
				return nil
			})
		}
		return g.Wait()
	})
	// Routed-row counters are per LOGICAL update, however many retry
	// attempts it took (matching Client.Update's accounting).
	c.bump(func(st *metrics.StoreStats) {
		for s, sub := range routed {
			st.Shards[s].UpdateRows += uint64(len(sub))
		}
		if err == nil {
			st.Updates++
		} else {
			countFailure(st, err)
		}
	})
	return err
}

// Stats snapshots the client-side counters: the cluster's own logical
// and per-shard counters, plus the hedging activity accumulated inside
// the per-cohort clients.
func (c *ClusterClient) Stats() ClusterStats {
	c.mu.Lock()
	out := c.stats
	out.Shards = append([]metrics.ShardStats(nil), c.stats.Shards...)
	c.mu.Unlock()
	for _, cli := range c.shards {
		if cli == nil {
			continue
		}
		st := cli.Stats()
		out.Hedges += st.Hedges
		out.HedgeWins += st.HedgeWins
	}
	return out
}

// record accumulates one round trip's counters for shard s.
func (c *ClusterClient) record(s int, queries, batchQueries uint64, d time.Duration, err error) {
	c.bump(func(st *metrics.StoreStats) {
		sh := &st.Shards[s]
		sh.Queries += queries
		if batchQueries > 0 {
			sh.Batches++
			sh.BatchQueries += batchQueries
		}
		sh.TotalTime += d
		if err != nil {
			sh.Errors++
		}
	})
}

func (c *ClusterClient) bump(f func(*metrics.StoreStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

// Close closes every cohort's client.
func (c *ClusterClient) Close() error {
	var err error
	for _, cli := range c.shards {
		if cli != nil {
			if cerr := cli.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
