package impir

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/scheduler"
	"github.com/impir/impir/internal/transport"
)

// startDeployment serves n byte-identical replicas over loopback TCP and
// returns their addresses.
func startDeployment(t *testing.T, db *DB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv, err := NewServer(testServerConfig(EngineCPU))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(db); err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr().String()
	}
	return addrs
}

// shimEngine wraps a real engine, letting tests slow down or fail the
// query path while keeping replicas byte-identical.
type shimEngine struct {
	*cpupir.Engine
	delay time.Duration
	fail  error
}

func (e *shimEngine) Query(k *dpf.Key) ([]byte, metrics.Breakdown, error) {
	if e.fail != nil {
		return nil, metrics.Breakdown{}, e.fail
	}
	time.Sleep(e.delay)
	return e.Engine.Query(k)
}

func (e *shimEngine) QueryShare(sh *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	if e.fail != nil {
		return nil, metrics.Breakdown{}, e.fail
	}
	time.Sleep(e.delay)
	return e.Engine.QueryShare(sh)
}

// startShimServer serves db through a shimEngine (behind a scheduler,
// like the real stack) over loopback TCP.
func startShimServer(t *testing.T, db *database.DB, delay time.Duration, fail error) string {
	t.Helper()
	eng, err := cpupir.New(cpupir.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched := scheduler.New(&shimEngine{Engine: eng, delay: delay, fail: fail}, scheduler.Config{})
	t.Cleanup(func() { sched.Close() })
	srv, err := transport.NewServer(lis, sched, 0, transport.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestClientRetrieve: the acceptance-criterion flow — Retrieve(ctx, idx)
// works unchanged against a 2-server DPF deployment and a 3-server share
// deployment, and RetrieveBatch works under both encodings.
func TestClientRetrieve(t *testing.T) {
	db, err := GenerateHashDB(700, 33) // non-power-of-two: shares must cover padding
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range []int{2, 3} {
		addrs := startDeployment(t, db, n)
		cli, err := Dial(ctx, addrs)
		if err != nil {
			t.Fatalf("%d servers: %v", n, err)
		}
		defer cli.Close()

		wantEnc := "dpf"
		if n > 2 {
			wantEnc = "shares"
		}
		if cli.Encoding() != wantEnc {
			t.Errorf("%d servers: encoding %q, want %q", n, cli.Encoding(), wantEnc)
		}
		if cli.Servers() != n || cli.RecordSize() != 32 {
			t.Errorf("%d servers: Servers=%d RecordSize=%d", n, cli.Servers(), cli.RecordSize())
		}

		for _, idx := range []uint64{0, 350, 699} {
			rec, err := cli.Retrieve(ctx, idx)
			if err != nil {
				t.Fatalf("%d servers: Retrieve(%d): %v", n, idx, err)
			}
			if !bytes.Equal(rec, db.Record(int(idx))) {
				t.Fatalf("%d servers: index %d: wrong record", n, idx)
			}
		}

		batch, err := cli.RetrieveBatch(ctx, []uint64{1, 511, 600, 1})
		if err != nil {
			t.Fatalf("%d servers: RetrieveBatch: %v", n, err)
		}
		for i, idx := range []uint64{1, 511, 600, 1} {
			if !bytes.Equal(batch[i], db.Record(int(idx))) {
				t.Fatalf("%d servers: batch item %d wrong", n, i)
			}
		}

		if _, err := cli.Retrieve(ctx, 1<<30); err == nil {
			t.Errorf("%d servers: out-of-range retrieve accepted", n)
		}
		empty, err := cli.RetrieveBatch(ctx, nil)
		if err != nil {
			t.Errorf("%d servers: empty batch errored: %v", n, err)
		}
		if empty == nil || len(empty) != 0 {
			t.Errorf("%d servers: empty batch returned %v, want empty non-nil slice", n, empty)
		}
	}
}

// TestClientFanOutConcurrency: with three servers each sleeping `delay`
// per query, a concurrent client finishes in ~delay while a sequential
// one needs 3×delay. Asserting max-not-sum latency.
func TestClientFanOutConcurrency(t *testing.T) {
	db, err := database.GenerateHashDB(256, 11)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 300 * time.Millisecond
	addrs := []string{
		startShimServer(t, db, delay, nil),
		startShimServer(t, db, delay, nil),
		startShimServer(t, db, delay, nil),
	}
	ctx := context.Background()
	cli, err := Dial(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	rec, err := cli.Retrieve(ctx, 77)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, db.Record(77)) {
		t.Fatal("wrong record through slow deployment")
	}
	if elapsed >= 2*delay {
		t.Fatalf("Retrieve took %v over 3 servers of %v each — sequential, not fanned out", elapsed, delay)
	}
}

// TestClientContextCancellation: a deadline must abort a retrieval stuck
// on a slow server, promptly and with the context's error.
func TestClientContextCancellation(t *testing.T) {
	db, err := database.GenerateHashDB(128, 12)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{
		startShimServer(t, db, 800*time.Millisecond, nil),
		startShimServer(t, db, 0, nil),
	}
	cli, err := Dial(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.Retrieve(ctx, 5)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Retrieve under expired deadline: err = %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v — deadline not honored on the wire", elapsed)
	}

	// The abandoned exchange poisoned the slow server's connection. The
	// next retrieval must transparently redial it and succeed — the
	// Client heals instead of requiring the caller to discard it.
	rec, err := cli.Retrieve(context.Background(), 5)
	if err != nil {
		t.Fatalf("post-cancel retrieve did not heal: %v", err)
	}
	if !bytes.Equal(rec, db.Record(5)) {
		t.Fatal("post-cancel retrieve returned the wrong record")
	}

	// An already-cancelled context must not touch the wire at all.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	cli2, err := Dial(context.Background(), []string{addrs[1], addrs[1]})
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.Retrieve(cancelled, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled retrieve: err = %v", err)
	}
}

// TestClientOneServerDownAborts: when any server fails, the whole
// retrieval fails — a lone subresult must never be returned as a record.
func TestClientOneServerDownAborts(t *testing.T) {
	db, err := database.GenerateHashDB(128, 13)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("replica offline for maintenance")
	addrs := []string{
		startShimServer(t, db, 0, nil),
		startShimServer(t, db, 50*time.Millisecond, boom),
	}
	cli, err := Dial(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rec, err := cli.Retrieve(context.Background(), 3)
	if err == nil {
		t.Fatal("retrieve succeeded with a failing server")
	}
	if rec != nil {
		t.Fatal("failing retrieval returned data — a lone subresult leaked")
	}
	if !strings.Contains(err.Error(), "party 1") {
		t.Errorf("error %q does not identify the failing party", err)
	}
}

// TestDialValidation: replica digest and geometry mismatches must be
// rejected at connect time, as must undersized deployments and encodings
// that cannot serve the server count.
func TestDialValidation(t *testing.T) {
	ctx := context.Background()

	if _, err := Dial(ctx, nil); err == nil {
		t.Error("Dial accepted zero addresses")
	}
	if _, err := Dial(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Error("Dial accepted a single server")
	}
	if _, err := Dial(ctx, []string{"a", "b", "c"}, WithEncoding(EncodingDPF)); err == nil {
		t.Error("DPF encoding accepted a 3-server deployment")
	}
	if _, err := Dial(ctx, []string{"a", "b"}, WithEncoding(nil)); err == nil {
		t.Error("Dial accepted a nil encoding")
	}

	// Mismatched replicas across three servers must be rejected.
	dbA, _ := GenerateHashDB(128, 1)
	dbB, _ := GenerateHashDB(128, 2)
	addrsA := startDeployment(t, dbA, 2)
	addrsB := startDeployment(t, dbB, 1)
	if _, err := Dial(ctx, append(addrsA, addrsB...)); err == nil ||
		!strings.Contains(err.Error(), "replica") {
		t.Errorf("mismatched replicas: err = %v", err)
	}

	// Mismatched geometry (same content length, different record count).
	dbC, _ := GenerateHashDB(256, 1)
	addrsC := startDeployment(t, dbC, 1)
	if _, err := Dial(ctx, append(addrsA, addrsC...)); err == nil {
		t.Error("mismatched geometry accepted")
	}
}

// TestClientExplicitShareEncodingTwoServers: forcing EncodingShares on a
// two-server deployment must work — it is the paper's communication
// ablation baseline.
func TestClientExplicitShareEncodingTwoServers(t *testing.T) {
	db, err := GenerateHashDB(256, 21)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cli, err := Dial(ctx, startDeployment(t, db, 2), WithEncoding(EncodingShares))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Encoding() != "shares" {
		t.Fatalf("encoding = %q", cli.Encoding())
	}
	rec, err := cli.Retrieve(ctx, 123)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, db.Record(123)) {
		t.Fatal("share-encoded 2-server retrieval wrong")
	}
}

// TestThreeServerBatch: batch retrieval under the share encoding against
// a 3-server deployment.
func TestThreeServerBatch(t *testing.T) {
	db, err := GenerateHashDB(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cli, err := Dial(ctx, startDeployment(t, db, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	recs, err := cli.RetrieveBatch(ctx, []uint64{7, 299, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range []uint64{7, 299, 0} {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			t.Fatalf("batch item %d wrong", i)
		}
	}
}

func TestParseEncoding(t *testing.T) {
	for s, want := range map[string]Encoding{
		"auto": EncodingAuto, "": EncodingAuto,
		"dpf":    EncodingDPF,
		"shares": EncodingShares, "share": EncodingShares, "naive": EncodingShares,
	} {
		got, err := ParseEncoding(s)
		if err != nil || got != want {
			t.Errorf("ParseEncoding(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEncoding("paillier"); err == nil {
		t.Error("unknown encoding accepted")
	}
	if EncodingAuto.String() != "auto" || EncodingDPF.String() != "dpf" || EncodingShares.String() != "shares" {
		t.Error("encoding names wrong")
	}
}

// TestClientConcurrentHealAfterCancel: goroutines retrieving
// concurrently right after a cancelled fan-out must all succeed — the
// redial path races benignly (one heals each slot, the others reuse
// the healed connection), and healthy-path retrievals never wait on a
// peer's redial.
func TestClientConcurrentHealAfterCancel(t *testing.T) {
	db, err := database.GenerateHashDB(128, 14)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{
		startShimServer(t, db, 300*time.Millisecond, nil),
		startShimServer(t, db, 0, nil),
	}
	cli, err := Dial(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, err := cli.Retrieve(ctx, 5); !errors.Is(err, context.DeadlineExceeded) {
		cancel()
		t.Fatalf("expected deadline exceeded, got %v", err)
	}
	cancel()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := cli.Retrieve(context.Background(), 5)
			if err == nil && !bytes.Equal(rec, db.Record(5)) {
				err = errors.New("wrong record")
			}
			errs[g] = err
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
