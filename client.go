package impir

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"github.com/impir/impir/internal/fanout"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
	"github.com/impir/impir/internal/transport"
)

// Client is a connection to one cohort of a PIR deployment: ≥ 2
// mutually non-colluding parties, each running one or more
// interchangeable replicas. Open returns a *Client for single-shard
// deployments; the historical Dial entry point wraps Open's flat path.
//
// Every retrieval encodes one query share per PARTY and sends each
// share to that party's fastest-known replica, hedging to the
// next-fastest replicas when the primary lags (first valid answer per
// party wins, losers are cancelled) — replicas of one party form one
// trust domain holding identical data, so hedging trades duplicate work
// for tail latency without touching the privacy argument. Parties are
// queried concurrently and a retrieval aborts as a whole when any PARTY
// fails (all of its replicas) or the context is cancelled: a proper
// subset of subresults is uniformly random and must never be mistaken
// for a record.
//
// A Client may be shared by concurrent goroutines; overlapping
// retrievals are serialised per server connection. A query abandoned
// mid-flight — by cancellation, a losing hedge, or a peer failure —
// poisons its connection (the wire protocol has no cancellation frame),
// but the Client heals itself: the next call transparently redials
// poisoned connections before fanning out. A replica that stays dead
// only degrades its party to the surviving replicas; calls keep
// succeeding as long as every party retains one live replica. A
// redialed connection is validated against the geometry learned at
// connect time; the full cross-replica digest check runs only at
// connect (replica contents may legitimately change between redials via
// Update).
type Client struct {
	parties    [][]string // party → replica addresses
	tlsCfg     *tls.Config
	coder      queryCoder
	geom       geometry
	recordSize int
	policy     policy

	mu    sync.Mutex    // guards conns replacement on redial and ewma
	conns [][]*transport.Conn
	ewma  [][]float64 // observed replica latency, EWMA, nanoseconds; 0 = unknown

	statsMu sync.Mutex
	stats   metrics.StoreStats
}

type clientConfig struct {
	encoding Encoding
	tlsCfg   *tls.Config
	unary    []UnaryInterceptor
	batch    []BatchInterceptor
	defaults callOptions
	sideInfo int
}

func resolveClientConfig(opts []ClientOption) clientConfig {
	cfg := clientConfig{encoding: EncodingAuto, defaults: defaultCallOptions()}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// newPolicy builds the store's call engine from its config, wiring the
// retry counter to the owning client's stats.
func (cfg clientConfig) newPolicy(onRetry func()) policy {
	return policy{unary: cfg.unary, batch: cfg.batch, defaults: cfg.defaults, onRetry: onRetry}
}

// shardConfig strips the interceptor chain for per-shard sub-clients of
// a cluster: interceptors run once per logical operation at the top.
func (cfg clientConfig) shardConfig() clientConfig {
	cfg.unary, cfg.batch = nil, nil
	return cfg
}

// ClientOption customises Open (and the deprecated Dial* wrappers).
type ClientOption func(*clientConfig)

// WithEncoding overrides the query encoding. The default, EncodingAuto,
// picks the DPF encoding for two-party deployments and the naive share
// encoding for larger ones.
func WithEncoding(e Encoding) ClientOption {
	return func(cfg *clientConfig) { cfg.encoding = e }
}

// WithTLS dials every server over TLS with the given configuration. PIR
// hides the query from the servers themselves; TLS hides traffic from
// everyone else.
func WithTLS(tlsCfg *tls.Config) ClientOption {
	return func(cfg *clientConfig) { cfg.tlsCfg = tlsCfg }
}

// WithUnaryInterceptor appends interceptors to the store's Retrieve
// chain; they run in registration order, first outermost.
func WithUnaryInterceptor(is ...UnaryInterceptor) ClientOption {
	return func(cfg *clientConfig) { cfg.unary = append(cfg.unary, is...) }
}

// WithBatchInterceptor appends interceptors to the store's
// RetrieveBatch chain; they run in registration order, first outermost.
func WithBatchInterceptor(is ...BatchInterceptor) ClientOption {
	return func(cfg *clientConfig) { cfg.batch = append(cfg.batch, is...) }
}

// WithSideInfoCache keeps the last n decoded records in a client-side
// LRU and spends hits as side information on coded deployments: a
// cached record is dropped from the batch planner's real assignment and
// its bucket query replaced by a well-formed dummy, so the wire traffic
// is byte-identical with or without the hit. Only effective when the
// deployment declares a batch_code section (Open ignores it otherwise —
// the uncoded paths have no constant shape to hide hits behind).
func WithSideInfoCache(n int) ClientOption {
	return func(cfg *clientConfig) { cfg.sideInfo = n }
}

// WithDefaultCallOptions installs store-level defaults applied to every
// call; per-call CallOptions override them.
func WithDefaultCallOptions(opts ...CallOption) ClientOption {
	return func(cfg *clientConfig) {
		for _, o := range opts {
			o(&cfg.defaults)
		}
	}
}

// Dial connects to every server of a flat PIR deployment — one
// single-replica party per address.
//
// Deprecated: use Open with a Deployment (FlatDeployment(addrs...) for
// this exact topology); Open adds replica sets, hedging, per-call
// policy, and the interceptor chain, and returns the same *Client for
// single-shard deployments.
func Dial(ctx context.Context, addrs []string, opts ...ClientOption) (*Client, error) {
	cfg := resolveClientConfig(opts)
	if cfg.encoding == nil {
		return nil, errors.New("impir: nil encoding")
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("impir: a PIR deployment needs ≥ 2 non-colluding servers, got %d address(es)", len(addrs))
	}
	return openFlat(ctx, FlatDeployment(addrs...).Shards[0], 0, cfg)
}

// openFlat connects one cohort: every replica of every party, with
// cross-replica validation and — when the manifest declares geometry —
// a handshake check against it.
func openFlat(ctx context.Context, shard DeploymentShard, recordSize int, cfg clientConfig) (*Client, error) {
	parties := shard.cohorts()
	if len(parties) < 2 {
		return nil, fmt.Errorf("impir: a PIR cohort needs ≥ 2 non-colluding parties, got %d", len(parties))
	}
	coder, err := cfg.encoding.resolve(len(parties))
	if err != nil {
		return nil, err
	}

	c := &Client{parties: parties, tlsCfg: cfg.tlsCfg, coder: coder}
	c.policy = cfg.newPolicy(func() {
		c.bump(func(st *metrics.StoreStats) { st.Retries++ })
	})
	c.stats.Shards = make([]metrics.ShardStats, 1)

	// Dial every replica of every party concurrently. A party tolerates
	// dead replicas at open as it does later: it needs one live replica,
	// and the dead ones are retried transparently on each call.
	conns := make([][]*transport.Conn, len(parties))
	dialErrs := make([][]error, len(parties))
	c.ewma = make([][]float64, len(parties))
	var wg sync.WaitGroup
	for p, replicas := range parties {
		conns[p] = make([]*transport.Conn, len(replicas))
		dialErrs[p] = make([]error, len(replicas))
		c.ewma[p] = make([]float64, len(replicas))
		for r := range replicas {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conns[p][r], dialErrs[p][r] = c.dialReplica(ctx, p, r)
			}()
		}
	}
	wg.Wait()
	c.conns = conns

	for p := range conns {
		alive := 0
		for _, conn := range conns[p] {
			if conn != nil {
				alive++
			}
		}
		if alive == 0 {
			err = fmt.Errorf("impir: %s unreachable: %w", fmtParty(p, len(parties[p])), firstNonNil(dialErrs[p]))
			break
		}
	}
	if err == nil {
		err = c.validate()
	}
	if err == nil && recordSize > 0 && c.recordSize != recordSize {
		err = fmt.Errorf("impir: servers serve %d-byte records, manifest says %d", c.recordSize, recordSize)
	}
	if err == nil && shard.NumRecords > 0 {
		if want := nextPow2(shard.NumRecords); c.geom.numRecords != want {
			err = fmt.Errorf("impir: servers serve %d records, manifest range of %d pads to %d",
				c.geom.numRecords, shard.NumRecords, want)
		}
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func firstNonNil(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return errors.New("no replicas")
}

// validate cross-checks the replicas every connected server presented
// during its handshake: identical digests and geometry, non-empty
// database — across parties AND within each party's replica set (a flat
// cohort serves one database; a replica mismatch silently breaks
// reconstruction). It also learns the cohort geometry.
func (c *Client) validate() error {
	var first *transport.Conn
	for p, reps := range c.conns {
		for r, conn := range reps {
			if conn == nil {
				continue
			}
			if first == nil {
				first = conn
				continue
			}
			info, finfo := conn.Info(), first.Info()
			if info.Digest != finfo.Digest {
				return fmt.Errorf("impir: party %d replica %d holds a different database replica (digest mismatch)", p, r)
			}
			if info.NumRecords != finfo.NumRecords || info.RecordSize != finfo.RecordSize ||
				info.Domain != finfo.Domain {
				return fmt.Errorf("impir: party %d replica %d disagrees on database geometry", p, r)
			}
		}
	}
	if first == nil {
		return errors.New("impir: no server connections")
	}
	info := first.Info()
	if info.NumRecords == 0 {
		return errors.New("impir: servers report an empty database")
	}
	c.geom = geometry{domain: int(info.Domain), numRecords: info.NumRecords}
	c.recordSize = int(info.RecordSize)
	return nil
}

// dialReplica (re)establishes the connection to party p's replica r
// under the Client's dial options.
func (c *Client) dialReplica(ctx context.Context, p, r int) (*transport.Conn, error) {
	addr := c.parties[p][r]
	if c.tlsCfg != nil {
		return transport.DialTLS(ctx, addr, c.tlsCfg)
	}
	return transport.Dial(ctx, addr)
}

// liveConns returns a usable connection snapshot, transparently
// redialing connections a previously abandoned exchange poisoned (or
// that never came up). With needAll false — the retrieval path — a
// replica that stays dead leaves a nil slot and only its PARTY must
// retain a live replica; with needAll true — the update path — every
// replica must be reachable, because an update must land on all of
// them. A fresh connection must present the geometry learned at connect
// time; the digest is deliberately not re-checked (Update legitimately
// changes it — replica agreement is cross-checked at connect).
//
// Dialing happens outside the Client mutex: a slow or unreachable
// server stalls only the call that needs it, never concurrent calls
// over healthy connections and never Close.
func (c *Client) liveConns(ctx context.Context, needAll bool) ([][]*transport.Conn, error) {
	c.mu.Lock()
	if c.conns == nil {
		c.mu.Unlock()
		return nil, errors.New("impir: client is closed")
	}
	snapshot := snapshotConns(c.conns)
	c.mu.Unlock()

	var broken []connSlot
	for p, reps := range snapshot {
		for r, conn := range reps {
			if conn == nil || conn.Broken() {
				broken = append(broken, connSlot{p, r})
			}
		}
	}
	if len(broken) == 0 {
		return snapshot, nil
	}

	fresh := make([]*transport.Conn, len(broken))
	dialErrs := make([]error, len(broken))
	var wg sync.WaitGroup
	for i, s := range broken {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := c.dialReplica(ctx, s.p, s.r)
			if err != nil {
				dialErrs[i] = fmt.Errorf("impir: redial %s replica %d: %w", fmtParty(s.p, len(c.parties[s.p])), s.r, err)
				return
			}
			info := conn.Info()
			if info.NumRecords != c.geom.numRecords || int(info.Domain) != c.geom.domain ||
				int(info.RecordSize) != c.recordSize {
				conn.Close()
				dialErrs[i] = fmt.Errorf("impir: redialed party %d replica %d presents a different database geometry", s.p, s.r)
				return
			}
			fresh[i] = conn
		}()
	}
	wg.Wait()

	c.mu.Lock()
	if c.conns == nil {
		c.mu.Unlock()
		for _, conn := range fresh {
			if conn != nil {
				conn.Close()
			}
		}
		return nil, errors.New("impir: client is closed")
	}
	for i, s := range broken {
		// A concurrent liveConns may have healed this slot while we
		// dialed; keep the existing healthy connection and drop ours.
		if cur := c.conns[s.p][s.r]; cur != nil && !cur.Broken() {
			if fresh[i] != nil {
				fresh[i].Close()
			}
			continue
		}
		if cur := c.conns[s.p][s.r]; cur != nil {
			cur.Close()
		}
		c.conns[s.p][s.r] = fresh[i] // possibly nil: replica stays down
	}
	out := snapshotConns(c.conns)
	c.mu.Unlock()

	for p, reps := range out {
		alive := 0
		for _, conn := range reps {
			if conn != nil && !conn.Broken() {
				alive++
			}
		}
		if needAll && alive < len(reps) {
			return nil, fmt.Errorf("impir: not every replica of %s is reachable (updates must land on all replicas): %w",
				fmtParty(p, len(reps)), firstSlotErr(dialErrs, broken, p))
		}
		if alive == 0 {
			return nil, fmt.Errorf("impir: %s has no live replicas: %w",
				fmtParty(p, len(reps)), firstSlotErr(dialErrs, broken, p))
		}
	}
	return out, nil
}

func snapshotConns(conns [][]*transport.Conn) [][]*transport.Conn {
	out := make([][]*transport.Conn, len(conns))
	for p, reps := range conns {
		out[p] = append([]*transport.Conn(nil), reps...)
	}
	return out
}

// connSlot addresses one replica connection by (party, replica) index.
type connSlot struct{ p, r int }

func firstSlotErr(errs []error, broken []connSlot, party int) error {
	for i, s := range broken {
		if s.p == party && errs[i] != nil {
			return errs[i]
		}
	}
	return errors.New("replica down")
}

// Servers returns the number of non-colluding parties of the cohort
// (the historical name: with single-replica parties, parties == servers).
func (c *Client) Servers() int { return len(c.parties) }

// Replicas returns the total replica count across all parties.
func (c *Client) Replicas() int {
	n := 0
	for _, reps := range c.parties {
		n += len(reps)
	}
	return n
}

// NumRecords returns the (power-of-two padded) record count of the
// deployment.
func (c *Client) NumRecords() uint64 { return c.geom.numRecords }

// RecordSize returns the record size in bytes.
func (c *Client) RecordSize() int { return c.recordSize }

// Encoding reports the resolved query encoding ("dpf" or "shares").
func (c *Client) Encoding() string { return c.coder.name() }

// Stats snapshots the client-side counters.
func (c *Client) Stats() StoreStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := c.stats
	out.Shards = append([]metrics.ShardStats(nil), c.stats.Shards...)
	return out
}

func (c *Client) bump(f func(*metrics.StoreStats)) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	f(&c.stats)
}

// Retrieve privately fetches record index: one query share per party,
// issued to all parties concurrently (hedged across each party's
// replicas), XOR of all subresults. No party learns the index; each
// sees only its pseudorandom share.
func (c *Client) Retrieve(ctx context.Context, index uint64, opts ...CallOption) ([]byte, error) {
	if index >= c.geom.numRecords {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, c.geom.numRecords)
	}
	co := c.policy.resolve(opts)
	rec, err := c.policy.doUnary(ctx, co, index, func(ctx context.Context, index uint64) ([]byte, error) {
		return c.retrieve(ctx, co, index)
	})
	c.bump(func(st *metrics.StoreStats) {
		if err == nil {
			st.Retrievals++
		} else {
			countFailure(st, err)
		}
	})
	return rec, err
}

// retrieve is the core operation under the policy engine: encode, fan
// out, reconstruct. Shard clients of a ClusterClient are driven here
// directly with the cluster's resolved options, bypassing their own
// policy.
func (c *Client) retrieve(ctx context.Context, co callOptions, index uint64) ([]byte, error) {
	queries, err := c.coder.encode(c.geom, len(c.parties), index)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	subresults, err := c.fanOut(ctx, co, queries)
	c.record(1, 0, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	recs := make([][]byte, len(subresults))
	for i, rs := range subresults {
		recs[i] = rs[0]
	}
	return Reconstruct(recs...)
}

// RetrieveBatch privately fetches several records in one round trip per
// party, under either encoding. An empty batch is a no-op: it returns
// an empty (non-nil) slice without touching the network, so callers
// assembling batches programmatically — like the keyword layer's padded
// probe plans — need no zero-length special case.
func (c *Client) RetrieveBatch(ctx context.Context, indices []uint64, opts ...CallOption) ([][]byte, error) {
	if len(indices) == 0 {
		return [][]byte{}, nil
	}
	for _, idx := range indices {
		if idx >= c.geom.numRecords {
			return nil, fmt.Errorf("impir: index %d outside database of %d records", idx, c.geom.numRecords)
		}
	}
	co := c.policy.resolve(opts)
	recs, err := c.policy.doBatch(ctx, co, indices, func(ctx context.Context, indices []uint64) ([][]byte, error) {
		return c.retrieveBatch(ctx, co, indices)
	})
	c.bump(func(st *metrics.StoreStats) {
		if err == nil {
			st.BatchRetrievals++
		} else {
			countFailure(st, err)
		}
	})
	return recs, err
}

// retrieveBatch is RetrieveBatch's core operation; see retrieve.
func (c *Client) retrieveBatch(ctx context.Context, co callOptions, indices []uint64) ([][]byte, error) {
	queries, err := c.coder.encodeBatch(c.geom, len(c.parties), indices)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	subresults, err := c.fanOut(ctx, co, queries)
	c.record(0, uint64(len(indices)), time.Since(start), err)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(indices))
	for i := range indices {
		recs := make([][]byte, len(subresults))
		for s, rs := range subresults {
			if i >= len(rs) {
				return nil, fmt.Errorf("impir: party %d returned %d of %d batch subresults", s, len(rs), len(indices))
			}
			recs[s] = rs[i]
		}
		rec, err := Reconstruct(recs...)
		if err != nil {
			return nil, fmt.Errorf("impir: batch item %d: %w", i, err)
		}
		out[i] = rec
	}
	return out, nil
}

// record accumulates one round trip's cohort counters.
func (c *Client) record(queries, batchQueries uint64, d time.Duration, err error) {
	c.bump(func(st *metrics.StoreStats) {
		sh := &st.Shards[0]
		sh.Queries += queries
		if batchQueries > 0 {
			sh.Batches++
			sh.BatchQueries += batchQueries
		}
		sh.TotalTime += d
		if err != nil {
			sh.Errors++
		}
	})
}

// fanOut issues one pre-encoded query share per party, all parties
// concurrent, each share hedged across its party's replicas, and
// collects every party's subresults. The first PARTY failure cancels
// the remaining queries and fails the whole retrieval — a lone
// subresult is never returned. Connections poisoned by an earlier
// abandoned exchange are transparently redialed first.
func (c *Client) fanOut(ctx context.Context, co callOptions, queries []serverQuery) ([][][]byte, error) {
	conns, err := c.liveConns(ctx, false)
	if err != nil {
		return nil, err
	}
	span := obs.SpanFromContext(ctx)
	subresults := make([][][]byte, len(conns))
	g, gctx := fanout.WithContext(ctx)
	for p := range conns {
		g.Go(func() error {
			psp := span.StartChild("party")
			psp.SetAttrInt("party", int64(p))
			psp.SetAttrInt("replicas", int64(len(conns[p])))
			rs, err := c.partyDo(obs.ContextWithSpan(gctx, psp), co, p, conns[p], queries[p])
			if err != nil {
				psp.SetAttr("error", err.Error())
				psp.End()
				return fmt.Errorf("impir: %s: %w", fmtParty(p, len(conns[p])), err)
			}
			psp.End()
			subresults[p] = rs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return subresults, nil
}

// partyDo executes one party's share against its replica set:
// fastest-first by observed latency, hedging to the next replica when
// the primary lags (or immediately when it fails), first valid answer
// wins, losers cancelled. Single-replica parties — and calls with
// hedging off — use the primary alone.
func (c *Client) partyDo(ctx context.Context, co callOptions, p int, conns []*transport.Conn, q serverQuery) ([][]byte, error) {
	order, primaryEWMA := c.replicaOrder(p, conns)
	if len(order) == 0 {
		return nil, errors.New("no live replicas")
	}
	psp := obs.SpanFromContext(ctx)
	n := 1
	if co.hedge {
		n = len(order)
	}
	if n == 1 {
		att := psp.StartChild("attempt")
		att.SetAttrInt("replica", int64(order[0]))
		start := time.Now()
		rs, err := q.do(attemptContext(ctx, att), conns[order[0]])
		if err == nil {
			c.observeLatency(p, order[0], time.Since(start), false)
			att.SetAttr("outcome", "ok")
		} else {
			att.SetAttr("outcome", "error")
			att.SetAttr("error", err.Error())
		}
		att.End()
		return rs, err
	}

	delay := co.hedgeDelay
	if delay <= 0 {
		delay = defaultHedgeDelay
	}
	// Adapt upward: hedge when the primary takes twice its usual time,
	// not merely longer than a fixed floor tuned for someone else's
	// deployment.
	if adaptive := 2 * time.Duration(primaryEWMA); adaptive > delay {
		delay = adaptive
	}
	psp.SetAttr("hedge_delay", delay.String())

	rs, winner, err := fanout.Hedge(ctx, n, delay, func(ctx context.Context, i int) ([][]byte, error) {
		if i > 0 {
			c.bump(func(st *metrics.StoreStats) { st.Hedges++ })
		}
		att := psp.StartChild("attempt")
		att.SetAttrInt("replica", int64(order[i]))
		att.SetAttrBool("hedge", i > 0)
		start := time.Now()
		rs, err := q.do(attemptContext(ctx, att), conns[order[i]])
		if err == nil {
			c.observeLatency(p, order[i], time.Since(start), false)
			att.SetAttr("outcome", "ok")
		} else if ctx.Err() != nil {
			// A cancelled exchange only tells us the replica took AT
			// LEAST this long — it lost the race, or the whole call was
			// abandoned early. Feed it in as a lower bound (it can raise
			// the estimate, never drag it down), which demotes
			// chronically slow replicas from primary without letting an
			// early external cancellation make a slow replica look fast.
			c.observeLatency(p, order[i], time.Since(start), true)
			if context.Cause(ctx) == fanout.ErrHedgeLost {
				att.SetAttr("outcome", "lost")
				att.SetAttrBool("cancelled", true)
			} else {
				att.SetAttr("outcome", "cancelled")
			}
		} else {
			att.SetAttr("outcome", "error")
			att.SetAttr("error", err.Error())
		}
		att.End()
		return rs, err
	})
	if err != nil {
		return nil, err
	}
	if winner > 0 {
		c.bump(func(st *metrics.StoreStats) { st.HedgeWins++ })
	}
	psp.SetAttrInt("winner_replica", int64(order[winner]))
	return rs, nil
}

// attemptContext attaches the attempt span's ID as the wire trace
// context for this one exchange. Each attempt span draws its ID
// independently at random, so every party — indeed every replica —
// receives a different, unlinkable ID; see the privacy argument in
// impir.go. Untraced calls (nil span) attach nothing and produce the
// exact legacy wire image.
func attemptContext(ctx context.Context, att *obs.Span) context.Context {
	if att == nil {
		return ctx
	}
	return transport.ContextWithTrace(ctx, att.ID(), true)
}

// replicaOrder returns party p's live replica indices fastest-first by
// EWMA latency — unmeasured replicas first in listed order (they may
// well be fast; the first call finds out) — plus the chosen primary's
// EWMA (0 when unmeasured) for the adaptive hedge delay.
func (c *Client) replicaOrder(p int, conns []*transport.Conn) ([]int, float64) {
	c.mu.Lock()
	ewma := append([]float64(nil), c.ewma[p]...)
	c.mu.Unlock()
	order := make([]int, 0, len(conns))
	for r, conn := range conns {
		if conn != nil {
			order = append(order, r)
		}
	}
	slices.SortStableFunc(order, func(a, b int) int {
		switch {
		case ewma[a] < ewma[b]:
			return -1
		case ewma[a] > ewma[b]:
			return 1
		default:
			return 0
		}
	})
	if len(order) == 0 {
		return nil, 0
	}
	return order, ewma[order[0]]
}

// ewmaAlpha weights the latest latency observation; ~1/3 keeps the
// estimate responsive to mode shifts without thrashing on one outlier.
const ewmaAlpha = 0.3

// observeLatency folds one latency sample into party p replica r's
// estimate. A lowerBound sample (from a cancelled exchange, whose true
// duration is unknown but at least d) may only raise the estimate.
func (c *Client) observeLatency(p, r int, d time.Duration, lowerBound bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ewma == nil || p >= len(c.ewma) || r >= len(c.ewma[p]) {
		return
	}
	cur := c.ewma[p][r]
	if lowerBound && cur != 0 && float64(d) <= cur {
		return
	}
	if cur == 0 {
		c.ewma[p][r] = float64(d)
	} else {
		c.ewma[p][r] = (1-ewmaAlpha)*cur + ewmaAlpha*float64(d)
	}
}

// Update pushes a §3.3 bulk record update to EVERY replica of every
// party: updates maps record index to its new contents (exactly
// RecordSize bytes each). Updates are an operator/owner action, not a
// private query — servers learn which records changed, by design — and
// each server applies the set atomically under its scheduler's epoch
// quiescing, so concurrent Retrieve calls never observe a torn update.
// Updates are never hedged, and require every replica reachable: a
// replica skipped by an update would serve stale records as if they
// were current. Servers reject wire updates unless started with
// ServerConfig.AllowWireUpdates; see that field for the threat model.
//
// All replicas are updated concurrently and the first failure cancels
// the rest, which can leave replicas diverged (some updated, some not).
// The caller must then retry the same update until it succeeds
// everywhere — the per-server application is idempotent, and a retry
// budget (WithRetries) spends itself on exactly this — or tear the
// deployment down; a divergence is also caught by the digest
// cross-check at the next connect.
func (c *Client) Update(ctx context.Context, updates map[uint64][]byte, opts ...CallOption) error {
	if len(updates) == 0 {
		return errors.New("impir: empty update set")
	}
	for idx, rec := range updates {
		if idx >= c.geom.numRecords {
			return fmt.Errorf("impir: update index %d outside database of %d records", idx, c.geom.numRecords)
		}
		if len(rec) != c.recordSize {
			return fmt.Errorf("impir: update for record %d has %d bytes, want the record size %d",
				idx, len(rec), c.recordSize)
		}
	}
	co := c.policy.resolve(opts)
	err := c.policy.doUpdate(ctx, co, func(ctx context.Context) error {
		return c.updateCore(ctx, updates)
	})
	c.bump(func(st *metrics.StoreStats) {
		if err == nil {
			st.Updates++
		} else {
			countFailure(st, err)
		}
		st.Shards[0].UpdateRows += uint64(len(updates))
	})
	return err
}

// updateCore pushes one validated update set to every replica.
func (c *Client) updateCore(ctx context.Context, updates map[uint64][]byte) error {
	conns, err := c.liveConns(ctx, true)
	if err != nil {
		return err
	}
	g, gctx := fanout.WithContext(ctx)
	for p := range conns {
		for r := range conns[p] {
			conn := conns[p][r]
			g.Go(func() error {
				if err := conn.Update(gctx, updates); err != nil {
					return fmt.Errorf("impir: update party %d replica %d: %w", p, r, err)
				}
				return nil
			})
		}
	}
	return g.Wait()
}

// Close closes every server connection. A closed Client stays closed:
// later calls fail rather than redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for _, reps := range c.conns {
		for _, conn := range reps {
			if conn != nil {
				if cerr := conn.Close(); err == nil {
					err = cerr
				}
			}
		}
	}
	c.conns = nil
	return err
}
