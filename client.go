package impir

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"sync"

	"github.com/impir/impir/internal/fanout"
	"github.com/impir/impir/internal/transport"
)

// Client is a connection to a multi-server PIR deployment — two servers
// under the DPF encoding, or any n ≥ 2 under the naive share encoding.
// Dial validates on connect that every server presents a byte-identical
// database replica (a replica mismatch silently breaks reconstruction);
// Retrieve and RetrieveBatch then fetch records privately, querying all
// servers concurrently so retrieval latency is the slowest server's
// round trip, not the sum.
//
// A retrieval aborts as a whole when any server fails or the context is
// cancelled: subresults from the remaining servers are discarded, never
// returned — a proper subset of subresults is uniformly random and must
// not be mistaken for a record.
//
// A Client may be shared by concurrent goroutines; overlapping
// retrievals are serialised per server connection. A query abandoned
// mid-flight — by context cancellation, or because another server's
// failure cancelled the fan-out — poisons the underlying connection (the
// wire protocol has no cancellation frame), but the Client heals itself:
// the next call transparently redials poisoned connections before
// fanning out, so a failed or cancelled retrieval does not require
// discarding the Client. A redialed connection is validated against the
// geometry learned at Dial time; the full cross-replica digest check
// runs only at Dial (replica contents may legitimately change between
// redials via Update).
type Client struct {
	addrs      []string
	tlsCfg     *tls.Config
	coder      queryCoder
	geom       geometry
	recordSize int

	mu    sync.Mutex // guards conns replacement on redial
	conns []*transport.Conn
}

type clientConfig struct {
	encoding Encoding
	tlsCfg   *tls.Config
}

// ClientOption customises Dial.
type ClientOption func(*clientConfig)

// WithEncoding overrides the query encoding. The default, EncodingAuto,
// picks the DPF encoding for two-server deployments and the naive share
// encoding for larger ones.
func WithEncoding(e Encoding) ClientOption {
	return func(cfg *clientConfig) { cfg.encoding = e }
}

// WithTLS dials every server over TLS with the given configuration. PIR
// hides the query from the servers themselves; TLS hides traffic from
// everyone else.
func WithTLS(tlsCfg *tls.Config) ClientOption {
	return func(cfg *clientConfig) { cfg.tlsCfg = tlsCfg }
}

// Dial connects to every server of a PIR deployment concurrently,
// cross-checks their database replicas, and resolves the query encoding
// against the deployment size. The context bounds connection
// establishment and the handshakes.
func Dial(ctx context.Context, addrs []string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{encoding: EncodingAuto}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.encoding == nil {
		return nil, errors.New("impir: nil encoding")
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("impir: a PIR deployment needs ≥ 2 non-colluding servers, got %d address(es)", len(addrs))
	}
	coder, err := cfg.encoding.resolve(len(addrs))
	if err != nil {
		return nil, err
	}

	conns := make([]*transport.Conn, len(addrs))
	g, gctx := fanout.WithContext(ctx)
	for i, addr := range addrs {
		g.Go(func() error {
			var (
				c   *transport.Conn
				err error
			)
			if cfg.tlsCfg != nil {
				c, err = transport.DialTLS(gctx, addr, cfg.tlsCfg)
			} else {
				c, err = transport.Dial(gctx, addr)
			}
			if err != nil {
				return fmt.Errorf("impir: server %d: %w", i, err)
			}
			conns[i] = c
			return nil
		})
	}
	err = g.Wait()
	c := &Client{addrs: addrs, tlsCfg: cfg.tlsCfg, conns: conns, coder: coder}
	if err == nil {
		err = c.validate()
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	info := conns[0].Info()
	c.geom = geometry{domain: int(info.Domain), numRecords: info.NumRecords}
	c.recordSize = int(info.RecordSize)
	return c, nil
}

// validate cross-checks the replicas every server presented during its
// handshake: identical digests and geometry, non-empty database.
func (c *Client) validate() error {
	first := c.conns[0].Info()
	if first.NumRecords == 0 {
		return errors.New("impir: servers report an empty database")
	}
	for i, conn := range c.conns[1:] {
		info := conn.Info()
		if info.Digest != first.Digest {
			return fmt.Errorf("impir: server %d holds a different database replica (digest mismatch)", i+1)
		}
		if info.NumRecords != first.NumRecords || info.RecordSize != first.RecordSize ||
			info.Domain != first.Domain {
			return fmt.Errorf("impir: server %d disagrees on database geometry", i+1)
		}
	}
	return nil
}

// dialServer (re)establishes the connection to server i under the
// Client's dial options.
func (c *Client) dialServer(ctx context.Context, i int) (*transport.Conn, error) {
	if c.tlsCfg != nil {
		return transport.DialTLS(ctx, c.addrs[i], c.tlsCfg)
	}
	return transport.Dial(ctx, c.addrs[i])
}

// liveConns returns a usable connection per server, transparently
// redialing any connection a previously abandoned exchange poisoned. A
// fresh connection must present the geometry learned at Dial time; the
// digest is deliberately not re-checked (Update legitimately changes it
// between redials — replica agreement is cross-checked at Dial).
//
// Dialing happens outside the Client mutex: a slow or unreachable
// server stalls only the retrieval that needs it, never concurrent
// retrievals over healthy connections and never Close.
func (c *Client) liveConns(ctx context.Context) ([]*transport.Conn, error) {
	c.mu.Lock()
	if c.conns == nil {
		c.mu.Unlock()
		return nil, errors.New("impir: client is closed")
	}
	snapshot := make([]*transport.Conn, len(c.conns))
	copy(snapshot, c.conns)
	c.mu.Unlock()

	var broken []int
	for i, conn := range snapshot {
		if conn == nil || conn.Broken() {
			broken = append(broken, i)
		}
	}
	if len(broken) == 0 {
		return snapshot, nil
	}

	fresh := make([]*transport.Conn, len(snapshot))
	g, gctx := fanout.WithContext(ctx)
	for _, i := range broken {
		g.Go(func() error {
			conn, err := c.dialServer(gctx, i)
			if err != nil {
				return fmt.Errorf("impir: redial server %d: %w", i, err)
			}
			info := conn.Info()
			if info.NumRecords != c.geom.numRecords || int(info.Domain) != c.geom.domain ||
				int(info.RecordSize) != c.recordSize {
				conn.Close()
				return fmt.Errorf("impir: redialed server %d presents a different database geometry", i)
			}
			fresh[i] = conn
			return nil
		})
	}
	err := g.Wait()

	c.mu.Lock()
	closed := c.conns == nil
	if err != nil || closed {
		c.mu.Unlock()
		for _, conn := range fresh {
			if conn != nil {
				conn.Close()
			}
		}
		if closed {
			return nil, errors.New("impir: client is closed")
		}
		return nil, err
	}
	for _, i := range broken {
		// A concurrent liveConns may have healed this slot while we
		// dialed; keep the existing healthy connection and drop ours.
		if cur := c.conns[i]; cur != nil && !cur.Broken() {
			fresh[i].Close()
			continue
		}
		if c.conns[i] != nil {
			c.conns[i].Close()
		}
		c.conns[i] = fresh[i]
	}
	out := make([]*transport.Conn, len(c.conns))
	copy(out, c.conns)
	c.mu.Unlock()
	return out, nil
}

// Servers returns the number of connected servers.
func (c *Client) Servers() int { return len(c.addrs) }

// NumRecords returns the (power-of-two padded) record count of the
// deployment.
func (c *Client) NumRecords() uint64 { return c.geom.numRecords }

// RecordSize returns the record size in bytes.
func (c *Client) RecordSize() int { return c.recordSize }

// Encoding reports the resolved query encoding ("dpf" or "shares").
func (c *Client) Encoding() string { return c.coder.name() }

// Retrieve privately fetches record index: one query message per server,
// issued to all servers concurrently, XOR of all subresults. No server
// learns the index; each sees only its pseudorandom message.
func (c *Client) Retrieve(ctx context.Context, index uint64) ([]byte, error) {
	if index >= c.geom.numRecords {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, c.geom.numRecords)
	}
	queries, err := c.coder.encode(c.geom, c.Servers(), index)
	if err != nil {
		return nil, err
	}
	subresults, err := c.fanOut(ctx, queries)
	if err != nil {
		return nil, err
	}
	recs := make([][]byte, len(subresults))
	for i, rs := range subresults {
		recs[i] = rs[0]
	}
	return Reconstruct(recs...)
}

// RetrieveBatch privately fetches several records in one round trip per
// server, under either encoding. An empty batch is a no-op: it returns
// an empty (non-nil) slice without touching the network, so callers
// assembling batches programmatically — like the keyword layer's
// padded probe plans — need no zero-length special case.
func (c *Client) RetrieveBatch(ctx context.Context, indices []uint64) ([][]byte, error) {
	if len(indices) == 0 {
		return [][]byte{}, nil
	}
	for _, idx := range indices {
		if idx >= c.geom.numRecords {
			return nil, fmt.Errorf("impir: index %d outside database of %d records", idx, c.geom.numRecords)
		}
	}
	queries, err := c.coder.encodeBatch(c.geom, c.Servers(), indices)
	if err != nil {
		return nil, err
	}
	subresults, err := c.fanOut(ctx, queries)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(indices))
	for i := range indices {
		recs := make([][]byte, len(subresults))
		for s, rs := range subresults {
			if i >= len(rs) {
				return nil, fmt.Errorf("impir: server %d returned %d of %d batch subresults", s, len(rs), len(indices))
			}
			recs[s] = rs[i]
		}
		rec, err := Reconstruct(recs...)
		if err != nil {
			return nil, fmt.Errorf("impir: batch item %d: %w", i, err)
		}
		out[i] = rec
	}
	return out, nil
}

// fanOut issues one pre-encoded query per server, all concurrently, and
// collects every server's subresults. The first failure cancels the
// remaining queries and fails the whole retrieval — a lone subresult is
// never returned. Connections poisoned by an earlier abandoned exchange
// are transparently redialed first.
func (c *Client) fanOut(ctx context.Context, queries []serverQuery) ([][][]byte, error) {
	conns, err := c.liveConns(ctx)
	if err != nil {
		return nil, err
	}
	subresults := make([][][]byte, len(conns))
	g, gctx := fanout.WithContext(ctx)
	for i := range conns {
		g.Go(func() error {
			rs, err := queries[i].do(gctx, conns[i])
			if err != nil {
				return fmt.Errorf("impir: server %d: %w", i, err)
			}
			subresults[i] = rs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return subresults, nil
}

// Update pushes a §3.3 bulk record update to every server of the
// deployment: updates maps record index to its new contents (exactly
// RecordSize bytes each). Updates are an operator/owner action, not a
// private query — servers learn which records changed, by design — and
// each server applies the set atomically under its scheduler's epoch
// quiescing, so concurrent Retrieve calls never observe a torn update.
// Servers reject wire updates unless started with
// ServerConfig.AllowWireUpdates; see that field for the threat model.
//
// All servers are updated concurrently and the first failure cancels the
// rest, which can leave replicas diverged (some updated, some not). The
// caller must then retry the same update until it succeeds everywhere —
// the per-server application is idempotent — or tear the deployment
// down; a divergence is also caught by the digest cross-check at the
// next Dial.
func (c *Client) Update(ctx context.Context, updates map[uint64][]byte) error {
	if len(updates) == 0 {
		return errors.New("impir: empty update set")
	}
	wire := make(map[int][]byte, len(updates))
	for idx, rec := range updates {
		if idx >= c.geom.numRecords {
			return fmt.Errorf("impir: update index %d outside database of %d records", idx, c.geom.numRecords)
		}
		if len(rec) != c.recordSize {
			return fmt.Errorf("impir: update for record %d has %d bytes, want the record size %d",
				idx, len(rec), c.recordSize)
		}
		// Safe narrowing: server databases are int-indexed, so the
		// handshake's record count — which idx is below — fits an int.
		wire[int(idx)] = rec
	}
	conns, err := c.liveConns(ctx)
	if err != nil {
		return err
	}
	g, gctx := fanout.WithContext(ctx)
	for i := range conns {
		g.Go(func() error {
			if err := conns[i].Update(gctx, wire); err != nil {
				return fmt.Errorf("impir: update server %d: %w", i, err)
			}
			return nil
		})
	}
	return g.Wait()
}

// Close closes every server connection. A closed Client stays closed:
// later calls fail rather than redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for _, conn := range c.conns {
		if conn != nil {
			if cerr := conn.Close(); err == nil {
				err = cerr
			}
		}
	}
	c.conns = nil
	return err
}
