package impir

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"

	"github.com/impir/impir/internal/fanout"
	"github.com/impir/impir/internal/transport"
)

// Client is a connection to a multi-server PIR deployment — two servers
// under the DPF encoding, or any n ≥ 2 under the naive share encoding.
// Dial validates on connect that every server presents a byte-identical
// database replica (a replica mismatch silently breaks reconstruction);
// Retrieve and RetrieveBatch then fetch records privately, querying all
// servers concurrently so retrieval latency is the slowest server's
// round trip, not the sum.
//
// A retrieval aborts as a whole when any server fails or the context is
// cancelled: subresults from the remaining servers are discarded, never
// returned — a proper subset of subresults is uniformly random and must
// not be mistaken for a record.
//
// A Client may be shared by concurrent goroutines; overlapping
// retrievals are serialised per server connection. Note that a query
// abandoned mid-flight — by context cancellation, or because another
// server's failure cancelled the fan-out — poisons the underlying
// connection (the wire protocol has no cancellation frame), so after a
// failed or cancelled retrieval the Client must be discarded.
type Client struct {
	conns      []*transport.Conn
	coder      queryCoder
	geom       geometry
	recordSize int
}

type clientConfig struct {
	encoding Encoding
	tlsCfg   *tls.Config
}

// ClientOption customises Dial.
type ClientOption func(*clientConfig)

// WithEncoding overrides the query encoding. The default, EncodingAuto,
// picks the DPF encoding for two-server deployments and the naive share
// encoding for larger ones.
func WithEncoding(e Encoding) ClientOption {
	return func(cfg *clientConfig) { cfg.encoding = e }
}

// WithTLS dials every server over TLS with the given configuration. PIR
// hides the query from the servers themselves; TLS hides traffic from
// everyone else.
func WithTLS(tlsCfg *tls.Config) ClientOption {
	return func(cfg *clientConfig) { cfg.tlsCfg = tlsCfg }
}

// Dial connects to every server of a PIR deployment concurrently,
// cross-checks their database replicas, and resolves the query encoding
// against the deployment size. The context bounds connection
// establishment and the handshakes.
func Dial(ctx context.Context, addrs []string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{encoding: EncodingAuto}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.encoding == nil {
		return nil, errors.New("impir: nil encoding")
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("impir: a PIR deployment needs ≥ 2 non-colluding servers, got %d address(es)", len(addrs))
	}
	coder, err := cfg.encoding.resolve(len(addrs))
	if err != nil {
		return nil, err
	}

	conns := make([]*transport.Conn, len(addrs))
	g, gctx := fanout.WithContext(ctx)
	for i, addr := range addrs {
		g.Go(func() error {
			var (
				c   *transport.Conn
				err error
			)
			if cfg.tlsCfg != nil {
				c, err = transport.DialTLS(gctx, addr, cfg.tlsCfg)
			} else {
				c, err = transport.Dial(gctx, addr)
			}
			if err != nil {
				return fmt.Errorf("impir: server %d: %w", i, err)
			}
			conns[i] = c
			return nil
		})
	}
	err = g.Wait()
	c := &Client{conns: conns, coder: coder}
	if err == nil {
		err = c.validate()
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	info := conns[0].Info()
	c.geom = geometry{domain: int(info.Domain), numRecords: info.NumRecords}
	c.recordSize = int(info.RecordSize)
	return c, nil
}

// validate cross-checks the replicas every server presented during its
// handshake: identical digests and geometry, non-empty database.
func (c *Client) validate() error {
	first := c.conns[0].Info()
	if first.NumRecords == 0 {
		return errors.New("impir: servers report an empty database")
	}
	for i, conn := range c.conns[1:] {
		info := conn.Info()
		if info.Digest != first.Digest {
			return fmt.Errorf("impir: server %d holds a different database replica (digest mismatch)", i+1)
		}
		if info.NumRecords != first.NumRecords || info.RecordSize != first.RecordSize ||
			info.Domain != first.Domain {
			return fmt.Errorf("impir: server %d disagrees on database geometry", i+1)
		}
	}
	return nil
}

// Servers returns the number of connected servers.
func (c *Client) Servers() int { return len(c.conns) }

// NumRecords returns the (power-of-two padded) record count of the
// deployment.
func (c *Client) NumRecords() uint64 { return c.geom.numRecords }

// RecordSize returns the record size in bytes.
func (c *Client) RecordSize() int { return c.recordSize }

// Encoding reports the resolved query encoding ("dpf" or "shares").
func (c *Client) Encoding() string { return c.coder.name() }

// Retrieve privately fetches record index: one query message per server,
// issued to all servers concurrently, XOR of all subresults. No server
// learns the index; each sees only its pseudorandom message.
func (c *Client) Retrieve(ctx context.Context, index uint64) ([]byte, error) {
	if index >= c.geom.numRecords {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, c.geom.numRecords)
	}
	queries, err := c.coder.encode(c.geom, len(c.conns), index)
	if err != nil {
		return nil, err
	}
	subresults, err := c.fanOut(ctx, queries)
	if err != nil {
		return nil, err
	}
	recs := make([][]byte, len(subresults))
	for i, rs := range subresults {
		recs[i] = rs[0]
	}
	return Reconstruct(recs...)
}

// RetrieveBatch privately fetches several records in one round trip per
// server, under either encoding.
func (c *Client) RetrieveBatch(ctx context.Context, indices []uint64) ([][]byte, error) {
	if len(indices) == 0 {
		return nil, errors.New("impir: empty batch")
	}
	for _, idx := range indices {
		if idx >= c.geom.numRecords {
			return nil, fmt.Errorf("impir: index %d outside database of %d records", idx, c.geom.numRecords)
		}
	}
	queries, err := c.coder.encodeBatch(c.geom, len(c.conns), indices)
	if err != nil {
		return nil, err
	}
	subresults, err := c.fanOut(ctx, queries)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(indices))
	for i := range indices {
		recs := make([][]byte, len(subresults))
		for s, rs := range subresults {
			if i >= len(rs) {
				return nil, fmt.Errorf("impir: server %d returned %d of %d batch subresults", s, len(rs), len(indices))
			}
			recs[s] = rs[i]
		}
		rec, err := Reconstruct(recs...)
		if err != nil {
			return nil, fmt.Errorf("impir: batch item %d: %w", i, err)
		}
		out[i] = rec
	}
	return out, nil
}

// fanOut issues one pre-encoded query per server, all concurrently, and
// collects every server's subresults. The first failure cancels the
// remaining queries and fails the whole retrieval — a lone subresult is
// never returned.
func (c *Client) fanOut(ctx context.Context, queries []serverQuery) ([][][]byte, error) {
	subresults := make([][][]byte, len(c.conns))
	g, gctx := fanout.WithContext(ctx)
	for i := range c.conns {
		g.Go(func() error {
			rs, err := queries[i].do(gctx, c.conns[i])
			if err != nil {
				return fmt.Errorf("impir: server %d: %w", i, err)
			}
			subresults[i] = rs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return subresults, nil
}

// Close closes every server connection.
func (c *Client) Close() error {
	var err error
	for _, conn := range c.conns {
		if conn != nil {
			if cerr := conn.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
