package impir

import (
	"context"
	"fmt"
	"sync"

	"github.com/impir/impir/internal/batchcode"
	"github.com/impir/impir/internal/metrics"
)

// CodedStore is the multi-message layer Open wraps around a deployment
// that declares a batch_code section: the servers hold a probabilistic
// batch-code encoding of the logical database (every record replicated
// into r of C buckets; see internal/batchcode), and this store
// translates logical indices into coded rows so a B-record
// RetrieveBatch costs a CONSTANT C+overflow sub-queries — one per
// bucket, real where the batch planner assigned a record, a well-formed
// dummy everywhere else — instead of B full-domain queries.
//
// Privacy: the coded query vector's shape (slot count, order, and the
// per-slot index domains) depends only on the public manifest, never on
// the batch's size or content; each sub-query is an ordinary PIR query
// whose index the servers cannot see. Which slots were real, which were
// dummies, and which records came from the side-information cache exist
// only client-side — the wire is byte-identical across all of them.
//
// On a sharded coded deployment (buckets aligned to shards; enforced by
// Deployment.Validate) each cohort receives exactly buckets/shards +
// overflow sub-queries per batch, which is where the per-server win
// comes from. Batches beyond the declared MaxBatch cap — and the
// vanishingly rare batches whose bucket matching overflows — fall back
// to the uncoded path transparently (a public event: the cap is public,
// and the fallback's B-query shape is the pre-code shape every
// deployment already exposes).
type CodedStore struct {
	inner   Store
	flat    *Client        // non-nil for single-shard deployments
	cluster *ClusterClient // non-nil for sharded deployments
	layout  *batchcode.Layout
	cache   *batchcode.SideInfoCache

	mu    sync.Mutex
	coded metrics.StoreStats // only the Coded*/SideInfo fields are used
}

var _ Store = (*CodedStore)(nil)

// newCodedStore wraps an opened topology client in the coded layer,
// cross-checking the served geometry against the code manifest.
func newCodedStore(inner Store, code CodeManifest, sideInfo int) (*CodedStore, error) {
	if inner.NumRecords() < code.TotalRows() {
		return nil, fmt.Errorf("impir: deployment serves %d rows but the batch code lays out %d; the servers are not holding the coded database",
			inner.NumRecords(), code.TotalRows())
	}
	if inner.RecordSize() != code.RecordSize {
		return nil, fmt.Errorf("impir: deployment serves %d-byte records but the batch code declares %d",
			inner.RecordSize(), code.RecordSize)
	}
	layout, err := batchcode.NewLayout(code)
	if err != nil {
		return nil, err
	}
	s := &CodedStore{inner: inner, layout: layout, cache: batchcode.NewSideInfoCache(sideInfo)}
	switch c := inner.(type) {
	case *Client:
		s.flat = c
	case *ClusterClient:
		s.cluster = c
		if code.Buckets%len(c.shards) != 0 {
			return nil, fmt.Errorf("impir: %d buckets over %d shards; coded routing needs bucket-aligned shards", code.Buckets, len(c.shards))
		}
	default:
		return nil, fmt.Errorf("impir: batch code over unsupported store type %T", inner)
	}
	return s, nil
}

// Code returns the batch-code manifest the store plans against.
func (s *CodedStore) Code() CodeManifest { return s.layout.Manifest() }

// Inner returns the wrapped topology client (*Client or
// *ClusterClient), for topology-specific accessors.
func (s *CodedStore) Inner() Store { return s.inner }

// NumRecords returns the LOGICAL record count — the index space the
// application addresses. The physical coded row count is
// Code().TotalRows().
func (s *CodedStore) NumRecords() uint64 { return s.layout.Manifest().NumRecords }

// RecordSize returns the record size in bytes.
func (s *CodedStore) RecordSize() int { return s.layout.Manifest().RecordSize }

// Retrieve privately fetches one logical record through its first coded
// copy. A side-information cache hit still issues one well-formed query
// — for a uniformly random coded row — so a single retrieval's wire
// traffic is identical whether or not the record was cached.
func (s *CodedStore) Retrieve(ctx context.Context, index uint64, opts ...CallOption) ([]byte, error) {
	m := s.layout.Manifest()
	if index >= m.NumRecords {
		return nil, fmt.Errorf("impir: index %d outside logical database of %d records", index, m.NumRecords)
	}
	if rec, ok := s.cache.Get(index); ok {
		dummy, err := batchcode.RandRow(m.TotalRows())
		if err != nil {
			return nil, err
		}
		if _, err := s.inner.Retrieve(ctx, dummy, opts...); err != nil {
			return nil, err
		}
		s.bump(func(st *metrics.StoreStats) { st.SideInfoHits++ })
		return rec, nil
	}
	rec, err := s.inner.Retrieve(ctx, s.layout.Row(index, 0), opts...)
	if err == nil {
		s.cache.Put(index, rec)
	}
	return rec, err
}

// RetrieveBatch privately fetches several logical records through one
// coded batch: a constant Code().QueriesPerBatch() sub-queries whatever
// the batch size, duplicates collapsed, cache hits spent as side
// information. Batches over the declared cap — or whose matching
// overflows — fall back to the uncoded translation (one query per
// record), counted in Stats().CodeFallbacks.
func (s *CodedStore) RetrieveBatch(ctx context.Context, indices []uint64, opts ...CallOption) ([][]byte, error) {
	if len(indices) == 0 {
		return [][]byte{}, nil
	}
	m := s.layout.Manifest()
	for _, idx := range indices {
		if idx >= m.NumRecords {
			return nil, fmt.Errorf("impir: index %d outside logical database of %d records", idx, m.NumRecords)
		}
	}
	// Pin cache hits now so eviction between planning and demux cannot
	// lose a record the plan decided not to fetch.
	have := make(map[uint64][]byte)
	for _, idx := range indices {
		if _, ok := have[idx]; ok {
			continue
		}
		if rec, ok := s.cache.Get(idx); ok {
			have[idx] = rec
		}
	}
	plan, ok, err := s.layout.PlanBatch(indices, func(idx uint64) bool {
		_, hit := have[idx]
		return hit
	})
	if err != nil {
		return nil, err
	}
	if !ok {
		return s.retrieveBatchUncoded(ctx, indices, opts)
	}

	var recs [][]byte
	if s.cluster != nil {
		recs, err = s.clusterCodedBatch(ctx, plan, opts)
	} else {
		recs, err = s.flat.RetrieveBatch(ctx, plan.Indices, opts...)
	}
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(indices))
	for i, src := range plan.Sources {
		switch src.Kind {
		case batchcode.FromSlot:
			out[i] = recs[src.Slot]
			s.cache.Put(indices[i], out[i])
		case batchcode.FromCache:
			out[i] = have[indices[i]]
		case batchcode.FromDup:
			out[i] = append([]byte(nil), out[src.Dup]...)
		}
	}
	s.bump(func(st *metrics.StoreStats) {
		st.CodedBatches++
		st.CodedQueries += uint64(len(plan.Indices))
		st.CodedDummies += uint64(len(plan.Indices) - plan.Real)
		st.SideInfoHits += uint64(plan.CacheHits)
	})
	return out, nil
}

// retrieveBatchUncoded is the fallback path: every logical record
// fetched through its first coded copy, one sub-query per record — the
// exact pre-code batch shape.
func (s *CodedStore) retrieveBatchUncoded(ctx context.Context, indices []uint64, opts []CallOption) ([][]byte, error) {
	rows := make([]uint64, len(indices))
	for i, idx := range indices {
		rows[i] = s.layout.Row(idx, 0)
	}
	recs, err := s.inner.RetrieveBatch(ctx, rows, opts...)
	if err != nil {
		return nil, err
	}
	for i, idx := range indices {
		s.cache.Put(idx, recs[i])
	}
	s.bump(func(st *metrics.StoreStats) { st.CodeFallbacks++ })
	return recs, nil
}

// clusterCodedBatch routes one coded plan over a sharded deployment:
// each cohort receives exactly buckets/shards bucket sub-queries (its
// own buckets, localised) plus every overflow slot (real local on the
// owning shard, dummy elsewhere) — equal-length batches, constant
// shape. The whole coded batch runs as ONE logical operation under the
// cluster's policy engine, so interceptors and retries fire once.
func (s *CodedStore) clusterCodedBatch(ctx context.Context, plan *batchcode.Plan, opts []CallOption) ([][]byte, error) {
	cc := s.cluster
	m := s.layout.Manifest()
	nShards := len(cc.shards)
	bps := m.Buckets / nShards

	owners := make([]int, len(plan.Indices))
	pos := make([]int, len(plan.Indices))
	locals := make([][]uint64, nShards)
	for sh := range locals {
		locals[sh] = make([]uint64, bps+m.OverflowSlots)
	}
	for b := 0; b < m.Buckets; b++ {
		sh, err := s.shardOf(plan.Indices[b])
		if err != nil {
			return nil, err
		}
		if want := b / bps; sh != want {
			return nil, fmt.Errorf("impir: bucket %d row %d lands on shard %d, want %d; shard cuts are not bucket-aligned",
				b, plan.Indices[b], sh, want)
		}
		owners[b], pos[b] = sh, b%bps
		locals[sh][b%bps] = plan.Indices[b] - cc.plan.Shards[sh].FirstRecord
	}
	for t := 0; t < m.OverflowSlots; t++ {
		slot := m.Buckets + t
		owner, err := s.shardOf(plan.Indices[slot])
		if err != nil {
			return nil, err
		}
		owners[slot], pos[slot] = owner, bps+t
		for sh := range locals {
			if sh == owner {
				locals[sh][bps+t] = plan.Indices[slot] - cc.plan.Shards[sh].FirstRecord
				continue
			}
			dummy, err := batchcode.RandRow(cc.plan.Shards[sh].NumRecords)
			if err != nil {
				return nil, err
			}
			locals[sh][bps+t] = dummy
		}
	}

	co := cc.policy.resolve(opts)
	recs, err := cc.policy.doBatch(ctx, co, plan.Indices, func(ctx context.Context, _ []uint64) ([][]byte, error) {
		perShard, err := cc.retrieveBatchShards(ctx, co, locals)
		if err != nil {
			return nil, err
		}
		out := make([][]byte, len(plan.Indices))
		for k := range out {
			out[k] = perShard[owners[k]][pos[k]]
		}
		return out, nil
	})
	cc.bump(func(st *metrics.StoreStats) {
		if err == nil {
			st.BatchRetrievals++
		} else {
			countFailure(st, err)
		}
	})
	return recs, err
}

// shardOf locates the cohort serving a coded row.
func (s *CodedStore) shardOf(row uint64) (int, error) {
	sh, _, err := s.cluster.plan.Locate(row)
	return sh, err
}

// Update pushes a bulk logical update through to EVERY coded copy of
// each record (updates are public operator actions, so fanning a row to
// its r bucket copies leaks nothing), and drops the records from the
// side-information cache so later hits cannot serve stale bytes.
func (s *CodedStore) Update(ctx context.Context, updates map[uint64][]byte, opts ...CallOption) error {
	m := s.layout.Manifest()
	coded := make(map[uint64][]byte, len(updates)*m.Choices)
	for idx, rec := range updates {
		if idx >= m.NumRecords {
			return fmt.Errorf("impir: index %d outside logical database of %d records", idx, m.NumRecords)
		}
		for j := 0; j < m.Choices; j++ {
			coded[s.layout.Row(idx, j)] = rec
		}
	}
	if err := s.inner.Update(ctx, coded, opts...); err != nil {
		return err
	}
	for idx := range updates {
		s.cache.Invalidate(idx)
	}
	return nil
}

// Stats snapshots the client-side counters: the wrapped topology
// client's counters plus the coded-batch layer's own.
func (s *CodedStore) Stats() StoreStats {
	st := s.inner.Stats()
	s.mu.Lock()
	st.CodedBatches += s.coded.CodedBatches
	st.CodedQueries += s.coded.CodedQueries
	st.CodedDummies += s.coded.CodedDummies
	st.CodeFallbacks += s.coded.CodeFallbacks
	st.SideInfoHits += s.coded.SideInfoHits
	s.mu.Unlock()
	return st
}

func (s *CodedStore) bump(f func(*metrics.StoreStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.coded)
}

// Close closes the wrapped topology client.
func (s *CodedStore) Close() error { return s.inner.Close() }
