package impir

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/impir/impir/internal/batchcode"
)

// codedTestDB builds a logical database with distinguishable records.
func codedTestDB(t *testing.T, n, recordSize int) *DB {
	t.Helper()
	db, err := NewDatabase(n, recordSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := make([]byte, recordSize)
		for j := range rec {
			rec[j] = byte(i + 7*j)
		}
		rec[0], rec[1] = byte(i), byte(i>>8)
		if err := db.SetRecord(i, rec); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// startCodedFlat encodes db under code, serves the coded database from a
// two-party flat deployment (wire updates allowed), and returns the
// deployment manifest declaring the code.
func startCodedFlat(t *testing.T, db *DB, code CodeManifest) Deployment {
	t.Helper()
	coded, err := batchcode.Encode(db, code)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 2)
	for i := range addrs {
		srv, err := NewServer(ServerConfig{Engine: EngineCPU, Threads: 2, AllowWireUpdates: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(coded.Clone()); err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr().String()
	}
	return FlatDeployment(addrs...).WithBatchCode(code)
}

// TestCodedStoreFlatE2E is the tentpole's differential check over real
// TCP: a coded deployment must decode byte-identically to the logical
// database for every batch size, while issuing a CONSTANT number of
// sub-queries per batch.
func TestCodedStoreFlatE2E(t *testing.T) {
	ctx := context.Background()
	const n, recordSize = 300, 32
	db := codedTestDB(t, n, recordSize)
	code, err := batchcode.Derive(n, recordSize, 8, 2, 2, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := startCodedFlat(t, db, code)

	store := openFromJSON(t, ctx, d)
	cs, ok := store.(*CodedStore)
	if !ok {
		t.Fatalf("Open returned %T, want *CodedStore", store)
	}
	if got := cs.NumRecords(); got != n {
		t.Fatalf("NumRecords() = %d, want logical %d", got, n)
	}

	// Single retrieval rides the coded layout.
	rec, err := store.Retrieve(ctx, 123)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, db.Record(123)) {
		t.Fatal("Retrieve decoded wrong bytes through the coded layout")
	}

	// Batches of every size (duplicates included) decode byte-identically
	// and cost exactly QueriesPerBatch() sub-queries each.
	want := uint64(code.QueriesPerBatch())
	for _, indices := range [][]uint64{
		{0},
		{n - 1, 0, 17},
		{5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{42, 17, 42, 299, 0, 13, 17, 100, 200, 250},
	} {
		before := store.Stats()
		recs, err := store.RetrieveBatch(ctx, indices)
		if err != nil {
			t.Fatalf("RetrieveBatch(%v): %v", indices, err)
		}
		for i, idx := range indices {
			if !bytes.Equal(recs[i], db.Record(int(idx))) {
				t.Fatalf("batch %v position %d (index %d): wrong bytes", indices, i, idx)
			}
		}
		delta := store.Stats().CodedQueries - before.CodedQueries
		if delta != want {
			t.Fatalf("batch of %d cost %d coded sub-queries, want constant %d", len(indices), delta, want)
		}
	}
	st := store.Stats()
	if st.CodedBatches != 5 || st.CodeFallbacks != 0 {
		t.Fatalf("stats: coded=%d fallbacks=%d, want 5 coded, 0 fallbacks", st.CodedBatches, st.CodeFallbacks)
	}
}

// TestCodedStoreShardedE2E routes a coded deployment over bucket-aligned
// shards: each cohort must receive exactly buckets/shards + overflow
// sub-queries per batch — the per-server win — and still decode
// byte-identically.
func TestCodedStoreShardedE2E(t *testing.T) {
	ctx := context.Background()
	const n, recordSize, shards = 400, 32, 2
	db := codedTestDB(t, n, recordSize)
	code, err := batchcode.Derive(n, recordSize, 4, 2, 1, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	coded, err := batchcode.Encode(db, code)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := startCluster(t, coded, shards)
	d := DeploymentFromManifest(m).WithBatchCode(code)

	store := openFromJSON(t, ctx, d)
	if _, ok := store.(*CodedStore); !ok {
		t.Fatalf("Open returned %T, want *CodedStore", store)
	}

	perShard := uint64(code.Buckets/shards + code.OverflowSlots)
	for trial := 0; trial < 4; trial++ {
		indices := []uint64{uint64(trial * 90), uint64(trial*90 + 31), uint64(trial*90 + 62), 7}
		before := store.Stats()
		recs, err := store.RetrieveBatch(ctx, indices)
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range indices {
			if !bytes.Equal(recs[i], db.Record(int(idx))) {
				t.Fatalf("trial %d position %d (index %d): wrong bytes", trial, i, idx)
			}
		}
		after := store.Stats()
		for s := range after.Shards {
			delta := after.Shards[s].BatchQueries - before.Shards[s].BatchQueries
			if delta != perShard {
				t.Fatalf("trial %d shard %d received %d sub-queries, want constant %d", trial, s, delta, perShard)
			}
		}
	}
}

// countingProxy forwards TCP to backend, counting bytes both ways.
type countingProxy struct {
	addr     string
	toServer atomic.Uint64
	toClient atomic.Uint64
}

func startCountingProxy(t *testing.T, backend string) *countingProxy {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	p := &countingProxy{addr: lis.Addr().String()}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			go func() {
				io.Copy(countWriter{up, &p.toServer}, conn)
				up.Close()
			}()
			go func() {
				io.Copy(countWriter{conn, &p.toClient}, up)
				conn.Close()
			}()
		}
	}()
	return p
}

type countWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n.Add(uint64(n))
	return n, err
}

// TestCodedTrafficShapeSideInfo is the privacy acceptance check: a batch
// whose every record is served from the side-information cache must put
// the SAME number of bytes on the wire, in both directions, as the cold
// batch that filled the cache. DPF keys are fixed-size for a fixed
// domain, so equality is exact, not approximate.
func TestCodedTrafficShapeSideInfo(t *testing.T) {
	ctx := context.Background()
	const n, recordSize = 256, 32
	db := codedTestDB(t, n, recordSize)
	code, err := batchcode.Derive(n, recordSize, 4, 2, 1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := startCodedFlat(t, db, code)

	// Interpose the counting proxy on party 0.
	proxy := startCountingProxy(t, d.Shards[0].Parties[0].Replicas[0])
	d.Shards[0].Parties[0].Replicas[0] = proxy.addr

	store := openFromJSON(t, ctx, d, WithSideInfoCache(32))

	indices := []uint64{10, 77, 140, 203}
	settle := func() (uint64, uint64) {
		time.Sleep(20 * time.Millisecond)
		return proxy.toServer.Load(), proxy.toClient.Load()
	}

	// Cold batch: all real, fills the cache.
	if _, err := store.RetrieveBatch(ctx, indices); err != nil {
		t.Fatal(err)
	}
	upCold0, downCold0 := settle()
	if _, err := store.RetrieveBatch(ctx, []uint64{30, 99, 160, 220}); err != nil {
		t.Fatal(err)
	}
	upCold1, downCold1 := settle()

	// Hot batch: every record is a cache hit, spent as side information.
	before := store.Stats()
	recs, err := store.RetrieveBatch(ctx, indices)
	if err != nil {
		t.Fatal(err)
	}
	upHot, downHot := settle()
	for i, idx := range indices {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			t.Fatalf("cache-hit batch position %d (index %d): wrong bytes", i, idx)
		}
	}
	delta := store.Stats()
	if hits := delta.SideInfoHits - before.SideInfoHits; hits != uint64(len(indices)) {
		t.Fatalf("side-info hits = %d, want %d", hits, len(indices))
	}
	if dummies := delta.CodedDummies - before.CodedDummies; dummies != uint64(code.QueriesPerBatch()) {
		t.Fatalf("all-cached batch issued %d dummies, want every one of %d slots", dummies, code.QueriesPerBatch())
	}

	coldUp, coldDown := upCold1-upCold0, downCold1-downCold0
	hotUp, hotDown := upHot-upCold1, downHot-downCold1
	if hotUp != coldUp || hotDown != coldDown {
		t.Fatalf("wire traffic differs between cache-miss and cache-hit batches: cold %d↑/%d↓ bytes, hot %d↑/%d↓ bytes",
			coldUp, coldDown, hotUp, hotDown)
	}
	if coldUp == 0 || coldDown == 0 {
		t.Fatal("proxy counted no traffic; test harness is broken")
	}
}

// TestCodedKeywordE2E: the keyword layer rides the coded path — OpenKV
// over a deployment declaring both a keyword table and a batch code
// serves Get/GetBatch through the batch planner.
func TestCodedKeywordE2E(t *testing.T) {
	ctx := context.Background()
	pairs := make([]KVPair, 40)
	for i := range pairs {
		pairs[i] = KVPair{
			Key:   []byte(fmt.Sprintf("key-%03d", i)),
			Value: []byte(fmt.Sprintf("value-%03d", i)),
		}
	}
	db, kvm, err := BuildKVDB(pairs, KVTableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := batchcode.Derive(uint64(db.NumRecords()), db.RecordSize(), 8, 2, 2, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	d := startCodedFlat(t, db, code).WithKeyword(kvm)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}

	kv, err := OpenKV(ctx, d, WithSideInfoCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if _, ok := kv.Store().(*CodedStore); !ok {
		t.Fatalf("keyword client probes a %T, want *CodedStore", kv.Store())
	}

	for i := 0; i < 10; i++ {
		val, err := kv.Get(ctx, pairs[i].Key)
		if err != nil {
			t.Fatalf("Get(%q): %v", pairs[i].Key, err)
		}
		if !bytes.Equal(val, pairs[i].Value) {
			t.Fatalf("Get(%q) = %q, want %q", pairs[i].Key, val, pairs[i].Value)
		}
	}
	if _, err := kv.Get(ctx, []byte("key-999")); err != ErrNotFound {
		t.Fatalf("absent key: err = %v, want ErrNotFound", err)
	}
	st := kv.Store().Stats()
	if st.CodedBatches == 0 {
		t.Fatal("keyword probes never rode the coded batch path")
	}
}

// TestCodedStoreFallback: batches over the declared cap fall back to the
// uncoded translation — still correct, counted, and shaped like the
// pre-code deployment.
func TestCodedStoreFallback(t *testing.T) {
	ctx := context.Background()
	const n, recordSize = 200, 32
	db := codedTestDB(t, n, recordSize)
	code, err := batchcode.Derive(n, recordSize, 4, 2, 1, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	d := startCodedFlat(t, db, code)
	store := openFromJSON(t, ctx, d)

	indices := []uint64{1, 30, 60, 90, 120, 150} // 6 > MaxBatch of 4
	recs, err := store.RetrieveBatch(ctx, indices)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			t.Fatalf("fallback position %d (index %d): wrong bytes", i, idx)
		}
	}
	st := store.Stats()
	if st.CodeFallbacks != 1 || st.CodedBatches != 0 {
		t.Fatalf("stats: fallbacks=%d coded=%d, want exactly one fallback and no coded batch", st.CodeFallbacks, st.CodedBatches)
	}
}

// TestCodedStoreUpdate: a logical update must reach every coded copy and
// invalidate the side-information cache, so no later read — coded batch,
// single retrieval, or cache hit — can serve stale bytes.
func TestCodedStoreUpdate(t *testing.T) {
	ctx := context.Background()
	const n, recordSize = 200, 32
	db := codedTestDB(t, n, recordSize)
	code, err := batchcode.Derive(n, recordSize, 4, 2, 1, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	d := startCodedFlat(t, db, code)
	store := openFromJSON(t, ctx, d, WithSideInfoCache(16))

	const idx = 55
	if _, err := store.Retrieve(ctx, idx); err != nil { // warm the cache
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0xAB}, recordSize)
	if err := store.Update(ctx, map[uint64][]byte{idx: fresh}); err != nil {
		t.Fatal(err)
	}

	// Single retrieval must not serve the stale cached copy.
	rec, err := store.Retrieve(ctx, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, fresh) {
		t.Fatal("Retrieve served stale bytes after Update; cache not invalidated")
	}
	// Every coded copy was updated: a batch may route the record through
	// any of its r copies, so exercise the planner a few times.
	for trial := 0; trial < 4; trial++ {
		recs, err := store.RetrieveBatch(ctx, []uint64{idx, uint64(trial * 40)})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(recs[0], fresh) {
			t.Fatalf("trial %d: coded batch served a stale copy; Update missed a bucket replica", trial)
		}
	}
}

// TestDeploymentBatchCodeValidation: manifests that contradict their
// batch code must be rejected at Validate time, before any dial.
func TestDeploymentBatchCodeValidation(t *testing.T) {
	code, err := batchcode.Derive(100, 32, 4, 2, 1, 8, 5)
	if err != nil {
		t.Fatal(err)
	}

	// Record size contradiction.
	d := FlatDeployment("a:1", "b:1").WithBatchCode(code)
	d.RecordSize = 64
	if err := d.Validate(); err == nil {
		t.Fatal("record-size mismatch accepted")
	}

	// Declared row count that is not the coded row count.
	m, err := UniformManifest(code.TotalRows()+5, 32, [][]string{{"a:1", "b:1"}, {"c:1", "d:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := DeploymentFromManifest(m).WithBatchCode(code).Validate(); err == nil {
		t.Fatal("wrong coded row count accepted")
	}

	// Bucket-misaligned shard count: 4 buckets cannot route over 3 shards.
	m3, err := UniformManifest(code.TotalRows(), 32, [][]string{{"a:1", "b:1"}, {"c:1", "d:1"}, {"e:1", "f:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := DeploymentFromManifest(m3).WithBatchCode(code).Validate(); err == nil {
		t.Fatal("bucket-misaligned shards accepted")
	}

	// Keyword table whose bucket count the code does not cover.
	pairs := []KVPair{{Key: []byte("k"), Value: []byte("v")}}
	_, kvm, err := BuildKVDB(pairs, KVTableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kvm.TotalBuckets() != code.NumRecords {
		if err := FlatDeployment("a:1", "b:1").WithKeyword(kvm).WithBatchCode(code).Validate(); err == nil {
			t.Fatal("keyword/code bucket-count mismatch accepted")
		}
	}
}
