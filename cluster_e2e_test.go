package impir

import (
	"bytes"
	"context"
	"net"
	"testing"
)

// startShardCohort serves replicas byte-identical copies of db over
// loopback TCP and returns their addresses plus the server handles (so
// tests can inspect replica state directly).
func startShardCohort(t *testing.T, db *DB, replicas int) ([]string, []*Server) {
	t.Helper()
	addrs := make([]string, replicas)
	servers := make([]*Server, replicas)
	for i := range addrs {
		srv, err := NewServer(ServerConfig{Engine: EngineCPU, Threads: 2, AllowWireUpdates: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(db.Clone()); err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr().String()
		servers[i] = srv
	}
	return addrs, servers
}

// startCluster splits db into shards cohorts of 2 replicas each, serves
// them over TCP, and returns the manifest plus per-shard server handles.
func startCluster(t *testing.T, db *DB, shards int) (ShardManifest, [][]*Server) {
	t.Helper()
	parts, err := SplitDB(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	cohorts := make([][]string, shards)
	servers := make([][]*Server, shards)
	for s, part := range parts {
		cohorts[s], servers[s] = startShardCohort(t, part, 2)
	}
	m, err := UniformManifest(uint64(db.NumRecords()), db.RecordSize(), cohorts)
	if err != nil {
		t.Fatal(err)
	}
	return m, servers
}

// TestClusterTwoShardsTwoReplicasE2E is the acceptance-criterion flow: a
// 2-shard × 2-replica deployment over real TCP retrieves correct records
// from both shards, a batch straddling the shard boundary matches the
// unsharded deployment byte-for-byte, and an update routed to one cohort
// is visible to subsequent retrievals without touching the other cohort.
func TestClusterTwoShardsTwoReplicasE2E(t *testing.T) {
	db, err := GenerateHashDB(128, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, servers := startCluster(t, db, 2)

	cc, err := DialCluster(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if cc.Shards() != 2 || cc.NumRecords() != 128 || cc.RecordSize() != 32 {
		t.Fatalf("cluster geometry: %d shards, %d records × %dB", cc.Shards(), cc.NumRecords(), cc.RecordSize())
	}

	// Single retrievals from both shards.
	for _, idx := range []uint64{0, 5, 63, 64, 100, 127} {
		rec, err := cc.Retrieve(ctx, idx)
		if err != nil {
			t.Fatalf("Retrieve(%d): %v", idx, err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("Retrieve(%d) returned the wrong record", idx)
		}
	}
	if _, err := cc.Retrieve(ctx, 128); err == nil {
		t.Fatal("out-of-range retrieve accepted")
	}

	// A batch straddling the shard boundary must match an unsharded
	// deployment of the same database byte-for-byte.
	straddle := []uint64{62, 63, 64, 65, 1, 127}
	got, err := cc.RetrieveBatch(ctx, straddle)
	if err != nil {
		t.Fatal(err)
	}
	flatAddrs, _ := startShardCohort(t, db, 2)
	flat, err := Dial(ctx, flatAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	want, err := flat.RetrieveBatch(ctx, straddle)
	if err != nil {
		t.Fatal(err)
	}
	for i := range straddle {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("batch item %d (global %d): sharded and unsharded results differ", i, straddle[i])
		}
	}

	// Empty batch: a no-op, matching Client.RetrieveBatch.
	empty, err := cc.RetrieveBatch(ctx, nil)
	if err != nil || empty == nil || len(empty) != 0 {
		t.Fatalf("empty cluster batch: %v, %v (want empty non-nil slice)", empty, err)
	}

	// Update routing: a dirty row in shard 1 reaches only shard 1's
	// cohort and is visible to subsequent retrievals.
	const target = 100 // shard 1, local 36
	newRec := bytes.Repeat([]byte{0xC3}, 32)
	shard0Digest := servers[0][0].Database().Digest()
	if err := cc.Update(ctx, map[uint64][]byte{target: newRec}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	rec, err := cc.Retrieve(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, newRec) {
		t.Fatal("update not visible to subsequent retrieval")
	}
	if servers[0][0].Database().Digest() != shard0Digest {
		t.Fatal("update for shard 1 modified shard 0's replica")
	}
	if got := servers[1][0].Database().Record(36); !bytes.Equal(got, newRec) {
		t.Fatal("owning cohort replica 0 did not apply the routed update")
	}
	if got := servers[1][1].Database().Record(36); !bytes.Equal(got, newRec) {
		t.Fatal("owning cohort replica 1 did not apply the routed update")
	}

	st := cc.Stats()
	if st.Retrievals == 0 || st.BatchRetrievals != 1 || st.Updates != 1 {
		t.Errorf("cluster stats: %v", st)
	}
	if len(st.Shards) != 2 || st.Shards[0].Queries != st.Shards[1].Queries {
		t.Errorf("per-shard sub-query counts must be identical by construction: %v", st)
	}
	if st.Shards[0].UpdateRows != 0 || st.Shards[1].UpdateRows != 1 {
		t.Errorf("update rows misattributed: %v", st)
	}
}

// TestClusterRaggedShardsE2E: N % S != 0 — 10 records over 3 shards
// (4,3,3) — retrieves every record correctly and batches straddle the
// uneven boundaries.
func TestClusterRaggedShardsE2E(t *testing.T) {
	db, err := GenerateHashDB(10, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, _ := startCluster(t, db, 3)
	if m.Shards[0].NumRecords != 4 || m.Shards[2].NumRecords != 3 {
		t.Fatalf("ragged split shapes: %+v", m.Shards)
	}

	cc, err := DialCluster(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	for idx := uint64(0); idx < 10; idx++ {
		rec, err := cc.Retrieve(ctx, idx)
		if err != nil {
			t.Fatalf("Retrieve(%d): %v", idx, err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("Retrieve(%d) wrong record", idx)
		}
	}

	batch := []uint64{3, 4, 6, 7, 9, 0} // crosses both ragged boundaries
	recs, err := cc.RetrieveBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range batch {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			t.Fatalf("batch item %d (global %d) wrong", i, idx)
		}
	}
}

// TestClusterDialValidation: the cluster client must reject topologies
// whose cohorts do not match the manifest geometry.
func TestClusterDialValidation(t *testing.T) {
	db, err := GenerateHashDB(64, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Manifest claims 2 shards of 32, but both cohorts serve all 64
	// records: padded counts (64) disagree with the shard range (32→32).
	addrs, _ := startShardCohort(t, db, 2)
	bad := ShardManifest{RecordSize: 32, Shards: []ClusterShard{
		{FirstRecord: 0, NumRecords: 32, Replicas: addrs},
		{FirstRecord: 32, NumRecords: 32, Replicas: addrs},
	}}
	if _, err := DialCluster(ctx, bad); err == nil {
		t.Fatal("geometry-mismatched cohort accepted")
	}

	// Invalid topology fails before any dialing.
	if _, err := DialCluster(ctx, ShardManifest{RecordSize: 32}); err == nil {
		t.Fatal("empty manifest accepted")
	}
}

// TestClusterManifestJSONThroughPublicAPI: the manifest round-trips
// through the root package's re-exports, as cmd flags rely on.
func TestClusterManifestJSONThroughPublicAPI(t *testing.T) {
	m, err := UniformManifest(700, 32, [][]string{{"a:1", "a:2"}, {"b:1", "b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != 700 || back.NumShards() != 2 {
		t.Fatalf("round trip: %d records, %d shards", back.NumRecords(), back.NumShards())
	}
	if back.Shards[1].NumRecords != 350 {
		t.Fatalf("shard 1 holds %d records", back.Shards[1].NumRecords)
	}
}
