package impir

import (
	"bytes"
	"context"
	"net"
	"slices"
	"testing"
	"time"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/keyword"
)

// openFromJSON round-trips the deployment through its JSON form before
// opening, so every topology test exercises the deployment.json path,
// not just the in-memory structs.
func openFromJSON(t *testing.T, ctx context.Context, d Deployment, opts ...ClientOption) Store {
	t.Helper()
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDeployment(data)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(ctx, parsed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// TestOpenFlatTopologyE2E: one Open + deployment.json drives the flat
// two-server topology over TCP.
func TestOpenFlatTopologyE2E(t *testing.T) {
	db, _ := GenerateHashDB(700, 41)
	addrs := startDeployment(t, db, 2)
	ctx := context.Background()

	store := openFromJSON(t, ctx, FlatDeployment(addrs...))
	if _, ok := store.(*Client); !ok {
		t.Fatalf("flat deployment opened as %T", store)
	}
	for _, idx := range []uint64{0, 350, 699} {
		rec, err := store.Retrieve(ctx, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("record %d wrong", idx)
		}
	}
	recs, err := store.RetrieveBatch(ctx, []uint64{5, 9, 500})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range []uint64{5, 9, 500} {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			t.Fatalf("batch record %d wrong", idx)
		}
	}
	st := store.Stats()
	if st.Retrievals != 3 || st.BatchRetrievals != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestOpenShardedTopologyE2E: the same Open + deployment.json drives a
// 2-shard × 2-replica cluster, answering byte-identically to the
// unsharded database, with updates routed to the owning cohort.
func TestOpenShardedTopologyE2E(t *testing.T) {
	db, _ := GenerateHashDB(600, 42)
	m, _ := startCluster(t, db, 2)
	ctx := context.Background()

	store := openFromJSON(t, ctx, DeploymentFromManifest(m))
	if _, ok := store.(*ClusterClient); !ok {
		t.Fatalf("sharded deployment opened as %T", store)
	}
	for _, idx := range []uint64{0, 299, 300, 599} { // both sides of the shard boundary
		rec, err := store.Retrieve(ctx, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("record %d wrong through sharded store", idx)
		}
	}
	newRec := bytes.Repeat([]byte{0x5A}, db.RecordSize())
	if err := store.Update(ctx, map[uint64][]byte{450: newRec}); err != nil {
		t.Fatal(err)
	}
	rec, err := store.Retrieve(ctx, 450)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, newRec) {
		t.Fatal("routed update not visible")
	}
}

// TestOpenKVTopologiesE2E: OpenKV + deployment.json (keyword section)
// drives both the flat and the sharded keyword topology over TCP.
func TestOpenKVTopologiesE2E(t *testing.T) {
	pairs := keyword.GeneratePairs(300, 43)
	kvdb, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	check := func(t *testing.T, kv *KVClient) {
		t.Helper()
		val, err := kv.Get(ctx, pairs[17].Key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(val, pairs[17].Value) {
			t.Fatal("wrong value")
		}
		if _, err := kv.Get(ctx, []byte("absent")); err != ErrNotFound {
			t.Fatalf("miss returned %v", err)
		}
	}

	t.Run("flat", func(t *testing.T) {
		addrs := startDeployment(t, kvdb, 2)
		d := FlatDeployment(addrs...).WithKeyword(m)
		data, err := d.JSON()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseDeployment(data)
		if err != nil {
			t.Fatal(err)
		}
		kv, err := OpenKV(ctx, parsed)
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		check(t, kv)
	})

	t.Run("sharded", func(t *testing.T) {
		cm, _ := startCluster(t, kvdb, 2)
		d := DeploymentFromManifest(cm).WithKeyword(m)
		data, err := d.JSON()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseDeployment(data)
		if err != nil {
			t.Fatal(err)
		}
		kv, err := OpenKV(ctx, parsed)
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		check(t, kv)
	})

	if _, err := OpenKV(ctx, FlatDeployment("a:1", "b:1")); err == nil {
		t.Fatal("OpenKV accepted a deployment without a keyword table")
	}
}

// startReplicaSetDeployment serves party 0 from two replicas — one
// artificially slow by slowDelay per query — and party 1 from one fast
// replica, returning the deployment. The slow replica is listed FIRST,
// so a cold client picks it as party 0's primary.
func startReplicaSetDeployment(t *testing.T, db *database.DB, slowDelay time.Duration) Deployment {
	t.Helper()
	slow := startShimServer(t, db, slowDelay, nil)
	fastA := startShimServer(t, db, 0, nil)
	fastB := startShimServer(t, db, 0, nil)
	return ReplicatedDeployment([]string{slow, fastA}, []string{fastB})
}

func percentile(durs []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	slices.Sort(sorted)
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestHedgedFanOutTailLatencyE2E is the acceptance fixture: one replica
// of party 0 stalls every query by slowDelay. Unhedged, a cold client
// pays the stall (its first call lands on the slow primary); hedged,
// the fast replica's answer wins after the hedge delay and p99
// improves by an order of magnitude. The reconstruction must be
// byte-identical either way — the fast replica's answer IS the party's
// answer.
func TestHedgedFanOutTailLatencyE2E(t *testing.T) {
	const (
		slowDelay  = 500 * time.Millisecond
		hedgeFloor = 15 * time.Millisecond
		calls      = 12
	)
	db, err := database.GenerateHashDB(1024, 44)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	run := func(t *testing.T, hedge bool) ([]time.Duration, StoreStats) {
		d := startReplicaSetDeployment(t, db, slowDelay)
		store, err := Open(ctx, d, WithDefaultCallOptions(
			WithHedging(hedge), WithHedgeDelay(hedgeFloor)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		durs := make([]time.Duration, calls)
		for i := 0; i < calls; i++ {
			idx := uint64(i * 50)
			start := time.Now()
			rec, err := store.Retrieve(ctx, idx)
			durs[i] = time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, db.Record(int(idx))) {
				t.Fatalf("call %d: wrong record (hedge=%v)", i, hedge)
			}
		}
		return durs, store.Stats()
	}

	unhedged, ust := run(t, false)
	hedged, hst := run(t, true)

	// The unhedged cold client paid the slow primary at least once…
	if max := percentile(unhedged, 0.99); max < slowDelay {
		t.Fatalf("unhedged p99 %v never hit the slow replica (fixture broken?)", max)
	}
	// …the hedged client never did: the fast replica's answer won.
	hedgedP99 := percentile(hedged, 0.99)
	if hedgedP99 >= slowDelay/2 {
		t.Fatalf("hedged p99 %v did not beat the %v stall", hedgedP99, slowDelay)
	}
	if hedgedP99 >= percentile(unhedged, 0.99) {
		t.Fatalf("hedged p99 %v not better than unhedged %v", hedgedP99, percentile(unhedged, 0.99))
	}
	if hst.Hedges == 0 || hst.HedgeWins == 0 {
		t.Fatalf("hedging never fired: %+v", hst)
	}
	if ust.Hedges != 0 || ust.HedgeWins != 0 {
		t.Fatalf("unhedged client hedged anyway: %+v", ust)
	}
	t.Logf("p99 unhedged=%v hedged=%v (hedges=%d wins=%d)",
		percentile(unhedged, 0.99), hedgedP99, hst.Hedges, hst.HedgeWins)
}

// deadAddr reserves a loopback address and immediately stops listening
// on it: a permanently dead replica.
func deadAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	return addr
}

// TestReplicaLossTolerated: a party with a dead replica keeps serving
// retrievals through its surviving replica — at open and after a
// mid-session crash — while updates (which must land on every replica)
// refuse to proceed.
func TestReplicaLossTolerated(t *testing.T) {
	db, _ := GenerateHashDB(512, 45)
	ctx := context.Background()
	live := startDeployment(t, db, 2)

	d := ReplicatedDeployment([]string{deadAddr(t), live[0]}, []string{live[1]})
	store, err := Open(ctx, d)
	if err != nil {
		t.Fatalf("open with one dead replica failed: %v", err)
	}
	defer store.Close()

	rec, err := store.Retrieve(ctx, 77)
	if err != nil {
		t.Fatalf("retrieval with one dead replica failed: %v", err)
	}
	if !bytes.Equal(rec, db.Record(77)) {
		t.Fatal("wrong record")
	}

	// Updates must land on every replica; a dead one blocks them.
	if err := store.Update(ctx, map[uint64][]byte{3: bytes.Repeat([]byte{1}, db.RecordSize())}); err == nil {
		t.Fatal("update succeeded with a dead replica")
	}
}

// TestReplicaCrashMidSessionTolerated: both replicas healthy at open;
// one crashes afterwards. Subsequent retrievals keep succeeding via the
// survivor (the dead primary's failure launches the hedge immediately).
func TestReplicaCrashMidSessionTolerated(t *testing.T) {
	db, _ := GenerateHashDB(512, 46)
	ctx := context.Background()

	crashable, servers := startShardCohort(t, db, 1)
	live := startDeployment(t, db, 2)
	d := ReplicatedDeployment([]string{crashable[0], live[0]}, []string{live[1]})

	store, err := Open(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Retrieve(ctx, 5); err != nil {
		t.Fatal(err)
	}

	servers[0].Close() // crash party 0's first replica mid-session

	for i := 0; i < 3; i++ {
		rec, err := store.Retrieve(ctx, uint64(100+i))
		if err != nil {
			t.Fatalf("retrieve %d after replica crash: %v", i, err)
		}
		if !bytes.Equal(rec, db.Record(100+i)) {
			t.Fatalf("wrong record after replica crash")
		}
	}
}
