// Benchmarks regenerating the paper's evaluation artefacts (one benchmark
// per table/figure; see DESIGN.md §4 for the experiment index) plus
// functional end-to-end micro-benchmarks of the public API.
//
// The figure benchmarks evaluate the calibrated hardware models at the
// paper's database sizes and report the headline modeled metric via
// b.ReportMetric; `impir-bench` prints the full tables. The functional
// benchmarks execute the real engines on scaled databases.
package impir

import (
	"context"
	"testing"

	"github.com/impir/impir/internal/bench"
)

func benchmarkFigure(b *testing.B, runner func(bench.Options) *bench.Report) {
	opts := bench.Options{} // model layer only; functional verification is TestAllFiguresReproduceShapes's job
	var r *bench.Report
	for i := 0; i < b.N; i++ {
		r = runner(opts)
	}
	if r == nil || !r.AllChecksPass() {
		b.Fatalf("%s failed its paper-shape checks", r.ID)
	}
	b.ReportMetric(float64(len(r.Rows)), "series-points")
}

func BenchmarkFig3aBreakdown(b *testing.B)      { benchmarkFigure(b, bench.Fig3a) }
func BenchmarkFig3bRoofline(b *testing.B)       { benchmarkFigure(b, bench.Fig3b) }
func BenchmarkFig9aThroughputVsDB(b *testing.B) { benchmarkFigure(b, bench.Fig9a) }
func BenchmarkFig9bThroughputVsBatch(b *testing.B) {
	benchmarkFigure(b, bench.Fig9b)
}
func BenchmarkFig9cLatencyVsDB(b *testing.B)    { benchmarkFigure(b, bench.Fig9c) }
func BenchmarkFig9dLatencyVsBatch(b *testing.B) { benchmarkFigure(b, bench.Fig9d) }
func BenchmarkFig10aPIMBreakdown(b *testing.B)  { benchmarkFigure(b, bench.Fig10a) }
func BenchmarkFig10bCPUBreakdown(b *testing.B)  { benchmarkFigure(b, bench.Fig10b) }
func BenchmarkTable1PhaseShares(b *testing.B)   { benchmarkFigure(b, bench.Table1) }
func BenchmarkFig11aClusterThroughput(b *testing.B) {
	benchmarkFigure(b, bench.Fig11a)
}
func BenchmarkFig11bClusterLatency(b *testing.B) { benchmarkFigure(b, bench.Fig11b) }
func BenchmarkFig12aEngineThroughput(b *testing.B) {
	benchmarkFigure(b, bench.Fig12a)
}
func BenchmarkFig12bEngineLatency(b *testing.B) { benchmarkFigure(b, bench.Fig12b) }
func BenchmarkShardScaling(b *testing.B)        { benchmarkFigure(b, bench.ShardScaling) }

// --- Functional end-to-end benchmarks on scaled databases ---

func setupBenchServer(b *testing.B, kind EngineKind, records int) *Server {
	b.Helper()
	srv, err := NewServer(ServerConfig{
		Engine:      kind,
		DPUs:        16,
		Tasklets:    8,
		EvalWorkers: 2,
		Threads:     2,
	})
	if err != nil {
		b.Fatal(err)
	}
	db, err := GenerateHashDB(records, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Load(db); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

func benchmarkEngineQuery(b *testing.B, kind EngineKind) {
	const records = 1 << 14
	srv := setupBenchServer(b, kind, records)
	k0, _, err := GenerateKeys(records, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(records) * 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.Answer(context.Background(), k0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryPIMEngine(b *testing.B) { benchmarkEngineQuery(b, EnginePIM) }
func BenchmarkQueryCPUEngine(b *testing.B) { benchmarkEngineQuery(b, EngineCPU) }
func BenchmarkQueryGPUEngine(b *testing.B) { benchmarkEngineQuery(b, EngineGPU) }

func BenchmarkQueryBatch32PIM(b *testing.B) {
	const records = 1 << 13
	srv := setupBenchServer(b, EnginePIM, records)
	keys := make([]*Key, 32)
	for i := range keys {
		k0, _, err := GenerateKeys(records, uint64(i*97)%records)
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k0
	}
	b.SetBytes(int64(records) * 32 * int64(len(keys)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srv.AnswerBatch(context.Background(), keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateKeys(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := GenerateKeys(1<<20, uint64(i)&(1<<20-1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	r0 := make([]byte, 32)
	r1 := make([]byte, 32)
	for i := range r0 {
		r0[i], r1[i] = byte(i), byte(i*7)
	}
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(r0, r1); err != nil {
			b.Fatal(err)
		}
	}
}
