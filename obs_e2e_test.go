package impir

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impir/impir/internal/obs"
)

// pollReadyz fetches /readyz once, failing the test on transport errors.
func pollReadyz(t *testing.T, base string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestObsAdminEndToEnd drives a real two-party TCP deployment under
// concurrent load while scraping the admin endpoint the way an external
// Prometheus would: /readyz must be 503 before Load and before Serve,
// 200 while serving, and flip back during shutdown; the final /metrics
// scrape must agree exactly with QueueStats(); the per-stage latency
// histograms must be non-empty for every frame type exercised; and no
// query may fail across the epoch flips concurrent updates cause.
func TestObsAdminEndToEnd(t *testing.T) {
	db, err := GenerateHashDB(512, 3)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := NewServer(ServerConfig{Engine: EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	s1, err := NewServer(ServerConfig{Engine: EngineCPU})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	// Admin endpoint first: it must be scrapeable while the server is
	// up but not yet ready.
	alis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminDone := make(chan error, 1)
	go func() { adminDone <- s0.ServeAdmin(alis) }()
	base := "http://" + alis.Addr().String()

	if code, body := pollReadyz(t, base); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, obs.CondDBLoaded) {
		t.Fatalf("/readyz before Load = %d %q, want 503 naming %s", code, body, obs.CondDBLoaded)
	}
	if err := s0.Load(db); err != nil {
		t.Fatal(err)
	}
	if err := s1.Load(db); err != nil {
		t.Fatal(err)
	}
	if code, body := pollReadyz(t, base); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, obs.CondServing) {
		t.Fatalf("/readyz after Load, before Serve = %d %q, want 503 naming %s", code, body, obs.CondServing)
	}

	rawLis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The wrapped listener blocks its own Close until released, pinning
	// Shutdown inside its drain window so the /readyz-during-drain
	// observation below is deterministic rather than a race.
	release := make(chan struct{})
	lis0 := &blockingCloseListener{Listener: rawLis0, release: release}
	if err := s0.Serve(lis0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s1.Serve(lis1, 1); err != nil {
		t.Fatal(err)
	}
	if code, _ := pollReadyz(t, base); code != http.StatusOK {
		t.Fatalf("/readyz while serving = %d, want 200", code)
	}

	ctx := context.Background()
	d := Deployment{RecordSize: db.RecordSize(), Shards: []DeploymentShard{{
		FirstRecord: 0,
		NumRecords:  uint64(db.NumRecords()),
		Parties: []Party{
			{Replicas: []string{s0.Addr().String()}},
			{Replicas: []string{s1.Addr().String()}},
		},
	}}}
	co := NewClientObs()
	store, err := Open(ctx, d, co.Option())
	if err != nil {
		t.Fatal(err)
	}
	co.Attach(store)

	// Expected record values, fetched before the concurrent phase so
	// correctness can be asserted under epoch flips. The updates below
	// rewrite record 0 with its current bytes on BOTH servers: a
	// byte-identical database at every instant, so no query can observe
	// version skew — the quiesce machinery still runs for real.
	rec0, err := store.Retrieve(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 4, 25
	want := make([][]byte, clients)
	for c := range want {
		if want[c], err = store.Retrieve(ctx, uint64(1+c)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*2+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				rec, err := store.Retrieve(ctx, uint64(1+c))
				if err != nil {
					errs <- fmt.Errorf("client %d retrieve %d: %w", c, q, err)
					return
				}
				if !bytes.Equal(rec, want[c]) {
					errs <- fmt.Errorf("client %d got wrong record during epoch flips", c)
					return
				}
				if q%5 == 0 {
					if _, err := store.RetrieveBatch(ctx, []uint64{uint64(1 + c), uint64(10 + c)}); err != nil {
						errs <- fmt.Errorf("client %d batch: %w", c, err)
						return
					}
				}
			}
		}(c)
	}
	// Concurrent updates: same bytes, both servers, real quiesces.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			for _, s := range []*Server{s0, s1} {
				if err := s.Update(map[uint64][]byte{0: rec0}); err != nil {
					errs <- fmt.Errorf("update %d: %w", i, err)
					return
				}
			}
		}
	}()
	// A probe hammering /readyz through the load: every response must
	// be a clean 200 or 503 — the admin plane never errors under
	// query-plane load.
	probeStop := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			resp, err := http.Get(base + "/readyz")
			if err != nil {
				errs <- fmt.Errorf("/readyz under load: %w", err)
				return
			}
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusOK && code != http.StatusServiceUnavailable {
				errs <- fmt.Errorf("/readyz returned %d under load", code)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(probeStop)
	<-probeDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s0.QueueStats(); st.Updates != 5 {
		t.Fatalf("server 0 applied %d updates, want 5", st.Updates)
	}

	// Scrape-vs-QueueStats exactness, captured at an idle moment (two
	// consecutive identical snapshots bracketing the scrape).
	var samples map[string]float64
	var st = s0.QueueStats()
	for attempt := 0; ; attempt++ {
		before := s0.QueueStats()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("/metrics Content-Type = %q", ct)
		}
		samples, err = obs.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		st = s0.QueueStats()
		if before == st {
			break
		}
		if attempt > 100 {
			t.Fatal("server never went idle for the scrape cross-check")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mirror := map[string]uint64{
		"submitted":         st.Submitted,
		"rejected":          st.Rejected,
		"cancelled":         st.Cancelled,
		"dispatched":        st.Dispatched,
		"passes":            st.Passes,
		"coalesced_passes":  st.CoalescedPasses,
		"coalesced_queries": st.CoalescedQueries,
		"fused_passes":      st.FusedPasses,
		"updates":           st.Updates,
	}
	for short, wantV := range mirror {
		if got := samples[obs.SchedulerMirrorSample(short)]; got != float64(wantV) {
			t.Errorf("%s scraped %v, QueueStats says %d", obs.SchedulerMirrorSample(short), got, wantV)
		}
	}
	if got := samples["impir_db_records"]; got != float64(db.NumRecords()) {
		t.Errorf("impir_db_records = %v, want %d", got, db.NumRecords())
	}
	// Per-stage latency histograms must be non-empty for every frame
	// type this load exercised.
	for _, frame := range []string{"query", "batch"} {
		for _, stage := range []string{obs.StageQueue, obs.StageEngine, obs.StageTotal} {
			if got := samples[obs.StageCountSample(frame, stage)]; got == 0 {
				t.Errorf("stage histogram empty for frame=%s stage=%s", frame, stage)
			}
		}
	}
	if got := samples[obs.RequestSample("query")]; got == 0 {
		t.Error("impir_requests_total{frame=\"query\"} is zero after load")
	}

	// Client-side observability saw the same traffic.
	snap := co.Snapshot()
	wantUnary := uint64(1 + clients + clients*perClient)
	if snap.Retrieve.Calls != wantUnary {
		t.Errorf("client obs Retrieve.Calls = %d, want %d", snap.Retrieve.Calls, wantUnary)
	}
	if snap.RetrieveBatch.Calls == 0 || snap.Retrieve.Errors != 0 {
		t.Errorf("client obs batch=%d errors=%d, want batches > 0 and zero errors",
			snap.RetrieveBatch.Calls, snap.Retrieve.Errors)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Shutdown: readiness flips BEFORE the query plane drains, and the
	// admin endpoint is the LAST thing to stop. The blocked listener
	// Close pins Shutdown inside the drain, so /readyz must converge to
	// 503 and stay there until the test releases it.
	sdDone := make(chan error, 1)
	go func() { sdDone <- s0.Shutdown(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := pollReadyz(t, base)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed /readyz 503 during the drain window")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-sdDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The registry outlives the listener: the ready gauge records the
	// flip even after the admin endpoint stops.
	var sb strings.Builder
	if err := s0.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	final, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if final["impir_ready"] != 0 {
		t.Errorf("impir_ready = %v after Shutdown, want 0", final["impir_ready"])
	}
	<-adminDone
}

// blockingCloseListener holds its Close until released, letting the
// test freeze Server.Shutdown inside its drain window.
type blockingCloseListener struct {
	net.Listener
	release chan struct{}
}

func (l *blockingCloseListener) Close() error {
	<-l.release
	return l.Listener.Close()
}
