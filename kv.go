package impir

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"github.com/impir/impir/internal/keyword"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
)

// Keyword retrieval: the cuckoo-table layer lives in internal/keyword;
// the root package re-exports it here together with KVClient, the
// network client that privately looks keys up against any deployment —
// a plain server pair (DialKV) or a sharded cluster (DialKVCluster).

// KVManifest describes a keyword table's geometry and hashing: bucket
// count and capacity, the reserved stash tail, key/value field sizes,
// and the k candidate-hash seeds. It is public data — a client needs
// it to compute probe indices, and it reveals nothing about the stored
// keys. Manifests round-trip through JSON (ParseKVManifest /
// LoadKVManifest / KVManifest.JSON) for flags and config files.
type KVManifest = keyword.Manifest

// KVPair is one key→value entry for BuildKVDB.
type KVPair = keyword.Pair

// KVTableOptions tunes the cuckoo table builder; the zero value
// derives everything from the input pairs. See keyword.Options.
type KVTableOptions = keyword.Options

// KVStats is a snapshot of a KVClient's cumulative counters.
type KVStats = metrics.KVStats

// ErrNotFound reports a key absent from a keyword store. A lookup for
// an absent key issues exactly the same wire traffic as a hit — the
// servers cannot tell the difference; only the client learns it.
var ErrNotFound = keyword.ErrNotFound

// ErrKVFull reports a keyword table whose candidate buckets and stash
// are exhausted — for Put, pick a larger table at the next rebuild.
var ErrKVFull = keyword.ErrTableFull

// ParseKVManifest decodes and validates a JSON keyword-table manifest.
func ParseKVManifest(data []byte) (KVManifest, error) { return keyword.Parse(data) }

// LoadKVManifest reads and validates a JSON keyword-table manifest file.
func LoadKVManifest(path string) (KVManifest, error) { return keyword.Load(path) }

// BuildKVDB builds a cuckoo table from key→value pairs and serialises
// it into an ordinary PIR database: record i is bucket i. Load the
// database into every replica (or SplitDB it across shard cohorts) and
// hand clients the returned manifest; the build is deterministic in
// (pairs, options), so independently building servers agree
// byte-for-byte.
func BuildKVDB(pairs []KVPair, opts KVTableOptions) (*DB, KVManifest, error) {
	t, err := keyword.BuildTable(pairs, opts)
	if err != nil {
		return nil, KVManifest{}, err
	}
	db, err := t.DB()
	if err != nil {
		return nil, KVManifest{}, err
	}
	return db, t.Manifest, nil
}

// KVClient privately looks keys up against a keyword store. Every
// lookup retrieves the key's k candidate buckets plus the whole stash
// tail in ONE RetrieveBatch — a constant, padded batch shape that
// depends only on the manifest and the key count, never on the key
// bytes or on whether the key exists — so the servers learn neither
// the key nor hit/miss (and each PIR sub-query already hides which
// bucket was read). Put and Delete ride the wire-update path with
// cuckoo-aware bucket rewrites; like all updates they are public
// operator actions (the touched bucket index is visible, the key and
// value bytes inside the fixed-size record are not inferable from the
// index alone, but treat mutations as non-private).
//
// A KVClient may be shared by concurrent goroutines for lookups.
// Concurrent mutations of the same bucket race at read-modify-write
// granularity — serialise Put/Delete externally, as with any
// replicated-update deployment.
type KVClient struct {
	store Store
	m     KVManifest

	mu    sync.Mutex
	stats metrics.KVStats
}

// DialKV connects to the ≥ 2 non-colluding servers of a keyword store
// and validates the served database against the table manifest.
//
// Deprecated: use OpenKV with FlatDeployment(addrs...).WithKeyword(m);
// OpenKV adds replica sets, hedging, per-call policy, and the
// interceptor chain.
func DialKV(ctx context.Context, addrs []string, m KVManifest, opts ...ClientOption) (*KVClient, error) {
	return OpenKV(ctx, FlatDeployment(addrs...).WithKeyword(m), opts...)
}

// DialKVCluster connects to a sharded keyword store: the cuckoo table
// database carved across the shard cohorts of cm (via SplitDB /
// SplitDBByManifest). Probes fan out through a ClusterClient, so every
// cohort receives a well-formed equal-length sub-batch whether or not
// it owns any probed bucket — sharding adds no leak on top of the
// constant probe shape.
//
// Deprecated: use OpenKV with DeploymentFromManifest(cm).WithKeyword(m);
// OpenKV adds replica sets, hedging, per-call policy, and the
// interceptor chain.
func DialKVCluster(ctx context.Context, cm ShardManifest, m KVManifest, opts ...ClientOption) (*KVClient, error) {
	return OpenKV(ctx, DeploymentFromManifest(cm).WithKeyword(m), opts...)
}

// newKVClient validates the dialed deployment's geometry against the
// table manifest: the record size must match the bucket encoding
// exactly, and the deployment must hold at least every bucket (servers
// pad record counts to powers of two, so ≥, not ==).
func newKVClient(store Store, m KVManifest) (*KVClient, error) {
	if store.RecordSize() != m.RecordSize() {
		return nil, fmt.Errorf("impir: deployment serves %d-byte records, keyword manifest's bucket encoding needs %d",
			store.RecordSize(), m.RecordSize())
	}
	if store.NumRecords() < m.TotalBuckets() {
		return nil, fmt.Errorf("impir: deployment serves %d records, keyword manifest needs %d buckets",
			store.NumRecords(), m.TotalBuckets())
	}
	return &KVClient{store: store, m: m}, nil
}

// Manifest returns the table manifest the client probes with.
func (c *KVClient) Manifest() KVManifest { return c.m }

// Store returns the underlying index store the client probes — useful
// for inspecting topology-specific state (a *CodedStore's batch-code
// counters, say) without reopening the deployment.
func (c *KVClient) Store() Store { return c.store }

// ProbesPerKey returns the constant bucket count retrieved per key —
// the k candidates plus the stash tail.
func (c *KVClient) ProbesPerKey() int { return c.m.ProbesPerKey() }

// Get privately fetches the value stored for key. Absent keys return
// ErrNotFound — after issuing exactly the same probe batch a hit
// issues, so the outcome is invisible to the servers.
func (c *KVClient) Get(ctx context.Context, key []byte, opts ...CallOption) ([]byte, error) {
	vals, err := c.getBatch(ctx, [][]byte{key}, false, opts)
	if err != nil {
		c.bump(func(s *metrics.KVStats) { s.Gets++; s.Errors++ })
		return nil, err
	}
	hit := vals[0] != nil
	c.bump(func(s *metrics.KVStats) {
		s.Gets++
		s.ProbedBuckets += uint64(c.m.ProbesPerKey())
		if hit {
			s.Hits++
		} else {
			s.Misses++
		}
	})
	if !hit {
		return nil, ErrNotFound
	}
	return vals[0], nil
}

// GetBatch privately fetches several keys in one batched round trip
// per server: len(keys)·k candidate probes plus one shared stash scan,
// a shape fixed by the manifest and the key count alone. The returned
// slice aligns with keys; absent keys yield a nil entry (no error), so
// mixed hit/miss batches — the common case for credential checking —
// need no special-casing. A present key whose stored value is empty
// yields a non-nil empty slice, distinguishable from a miss. GetBatch
// with no keys returns an empty slice.
func (c *KVClient) GetBatch(ctx context.Context, keys [][]byte, opts ...CallOption) ([][]byte, error) {
	if len(keys) == 0 {
		return [][]byte{}, nil
	}
	vals, err := c.getBatch(ctx, keys, false, opts)
	if err != nil {
		c.bump(func(s *metrics.KVStats) { s.BatchGets++; s.Errors++ })
		return nil, err
	}
	c.bump(func(s *metrics.KVStats) {
		s.BatchGets++
		s.BatchKeys += uint64(len(keys))
		s.ProbedBuckets += uint64(len(keys)*c.m.Hashes()) + c.m.StashBuckets
		for _, v := range vals {
			if v != nil {
				s.Hits++
			} else {
				s.Misses++
			}
		}
	})
	return vals, nil
}

// getBatch runs the constant-shape probe: every key's k candidate
// buckets, then the stash tail once, all in one RetrieveBatch. With
// raw true it returns the probed bucket records themselves (Put and
// Delete rewrite them); otherwise the per-key values, nil for misses.
func (c *KVClient) getBatch(ctx context.Context, keys [][]byte, raw bool, opts []CallOption) ([][]byte, error) {
	k := c.m.Hashes()
	indices := make([]uint64, 0, len(keys)*k+int(c.m.StashBuckets))
	for i, key := range keys {
		if err := c.m.CheckKey(key); err != nil {
			return nil, fmt.Errorf("impir: key %d: %w", i, err)
		}
		indices = append(indices, c.m.Candidates(key)...)
	}
	indices = append(indices, c.m.StashIndices()...)
	// Label the underlying batch's root span with the probe shape; the
	// span itself only opens inside the store's interceptor chain. Keys,
	// candidates, and hits never appear — only counts, which are a pure
	// function of the manifest and the key count.
	ctx = obs.ContextWithOpAttrs(ctx,
		obs.Attr{Key: "kv_keys", Value: strconv.Itoa(len(keys))},
		obs.Attr{Key: "kv_probes", Value: strconv.Itoa(len(indices))})
	recs, err := c.store.RetrieveBatch(ctx, indices, opts...)
	if err != nil {
		return nil, err
	}
	if raw {
		return recs, nil
	}
	// Decode the shared stash records once, not once per key.
	stash := make([][]keyword.Slot, int(c.m.StashBuckets))
	for i, rec := range recs[len(keys)*k:] {
		slots, err := c.m.DecodeBucket(rec)
		if err != nil {
			return nil, fmt.Errorf("impir: corrupt stash record: %w", err)
		}
		stash[i] = slots
	}
	out := make([][]byte, len(keys))
	for i, key := range keys {
		val, found, err := c.findIn(recs[i*k:(i+1)*k], stash, key)
		if err != nil {
			return nil, err
		}
		if found {
			out[i] = val
		}
	}
	return out, nil
}

// findIn searches a key's candidate records, then the pre-decoded
// stash slots.
func (c *KVClient) findIn(cands [][]byte, stash [][]keyword.Slot, key []byte) ([]byte, bool, error) {
	for _, rec := range cands {
		if v, ok, err := c.m.FindInBucket(rec, key); err != nil {
			return nil, false, fmt.Errorf("impir: corrupt bucket record: %w", err)
		} else if ok {
			return v, true, nil
		}
	}
	for _, slots := range stash {
		for _, s := range slots {
			if s.Occupied && string(s.Key) == string(key) {
				return s.Value, true, nil
			}
		}
	}
	return nil, false, nil
}

// Put stores (or overwrites) key→value through the wire-update path:
// it privately probes the key's buckets with the standard
// constant-shape batch, rewrites the holding bucket (overwrite), or
// places the pair into the first candidate bucket with a free slot,
// falling back to the stash tail, and pushes the single rewritten
// bucket record to every replica. Returns ErrKVFull when candidates
// and stash are all occupied (Put does not run eviction walks online —
// rebuild the table with BuildKVDB for bulk growth). Like every
// update, the rewritten bucket index is visible to the servers; the
// probe that preceded it is not attributable to a key. Servers must be
// started with ServerConfig.AllowWireUpdates.
func (c *KVClient) Put(ctx context.Context, key, value []byte, opts ...CallOption) error {
	err := c.put(ctx, key, value, opts)
	c.bump(func(s *metrics.KVStats) {
		s.Puts++
		s.ProbedBuckets += uint64(c.m.ProbesPerKey())
		if err != nil {
			s.Errors++
		}
	})
	return err
}

func (c *KVClient) put(ctx context.Context, key, value []byte, opts []CallOption) error {
	if err := c.m.CheckValue(value); err != nil {
		return fmt.Errorf("impir: %w", err)
	}
	recs, err := c.getBatch(ctx, [][]byte{key}, true, opts)
	if err != nil {
		return err
	}
	indices := c.m.ProbeIndices(key) // same order getBatch probed

	// Pass 1: the key may already live in one of its buckets — overwrite
	// in place, keeping the table canonical (one slot per key).
	type located struct {
		bucket uint64
		slots  []keyword.Slot
		slot   int
	}
	var free *located
	for p, rec := range recs {
		slots, err := c.m.DecodeBucket(rec)
		if err != nil {
			return fmt.Errorf("impir: corrupt bucket record %d: %w", indices[p], err)
		}
		for si, s := range slots {
			if s.Occupied && string(s.Key) == string(key) {
				slots[si].Value = value
				return c.rewrite(ctx, indices[p], slots, opts)
			}
			if !s.Occupied && free == nil {
				free = &located{bucket: indices[p], slots: slots, slot: si}
			}
		}
	}
	// Pass 2: first free slot in probe order (candidates before stash).
	if free == nil {
		return fmt.Errorf("impir: %w", ErrKVFull)
	}
	free.slots[free.slot] = keyword.Slot{Occupied: true, Key: append([]byte(nil), key...), Value: value}
	return c.rewrite(ctx, free.bucket, free.slots, opts)
}

// Delete removes key from the store through the wire-update path. The
// probe is the standard constant-shape batch; absent keys return
// ErrNotFound without any update.
func (c *KVClient) Delete(ctx context.Context, key []byte, opts ...CallOption) error {
	err := c.delete(ctx, key, opts)
	c.bump(func(s *metrics.KVStats) {
		s.Deletes++
		s.ProbedBuckets += uint64(c.m.ProbesPerKey())
		if err != nil {
			s.Errors++
		}
	})
	return err
}

func (c *KVClient) delete(ctx context.Context, key []byte, opts []CallOption) error {
	recs, err := c.getBatch(ctx, [][]byte{key}, true, opts)
	if err != nil {
		return err
	}
	indices := c.m.ProbeIndices(key) // same order getBatch probed
	for p, rec := range recs {
		slots, err := c.m.DecodeBucket(rec)
		if err != nil {
			return fmt.Errorf("impir: corrupt bucket record %d: %w", indices[p], err)
		}
		for si, s := range slots {
			if s.Occupied && string(s.Key) == string(key) {
				slots[si] = keyword.Slot{}
				return c.rewrite(ctx, indices[p], slots, opts)
			}
		}
	}
	return ErrNotFound
}

// rewrite encodes one bucket's slots and pushes it to every replica
// (or, through a ClusterClient, to the owning cohort only).
func (c *KVClient) rewrite(ctx context.Context, bucket uint64, slots []keyword.Slot, opts []CallOption) error {
	rec, err := c.m.EncodeBucket(slots)
	if err != nil {
		return fmt.Errorf("impir: re-encode bucket %d: %w", bucket, err)
	}
	return c.store.Update(ctx, map[uint64][]byte{bucket: rec}, opts...)
}

// Stats snapshots the client-side keyword counters.
func (c *KVClient) Stats() KVStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *KVClient) bump(f func(*metrics.KVStats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

// Close closes the underlying deployment client.
func (c *KVClient) Close() error { return c.store.Close() }
