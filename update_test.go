package impir

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestUpdateAcrossEngines: §3.3 bulk updates must be visible to
// subsequent queries on every engine, through the public API.
func TestUpdateAcrossEngines(t *testing.T) {
	for _, kind := range []EngineKind{EnginePIM, EngineCPU, EngineGPU} {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := GenerateHashDB(256, 1)
			if err != nil {
				t.Fatal(err)
			}
			s0, s1 := newPair(t, kind, db)

			newRec := bytes.Repeat([]byte{0x5C}, 32)
			updates := map[uint64][]byte{99: newRec}
			if err := s0.Update(updates); err != nil {
				t.Fatalf("Update server 0: %v", err)
			}
			if err := s1.Update(updates); err != nil {
				t.Fatalf("Update server 1: %v", err)
			}

			k0, k1, err := GenerateKeys(256, 99)
			if err != nil {
				t.Fatal(err)
			}
			r0, _, err := s0.Answer(context.Background(), k0)
			if err != nil {
				t.Fatal(err)
			}
			r1, _, err := s1.Answer(context.Background(), k1)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := Reconstruct(r0, r1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, newRec) {
				t.Fatalf("engine %v: query after update returned stale record", kind)
			}
		})
	}
}

func TestUpdateValidationThroughPublicAPI(t *testing.T) {
	db, _ := GenerateHashDB(64, 1)
	s0, _ := newPair(t, EngineCPU, db)
	if err := s0.Update(nil); err == nil {
		t.Error("empty update accepted")
	}
	if err := s0.Update(map[uint64][]byte{1000: make([]byte, 32)}); err == nil {
		t.Error("out-of-range update accepted")
	}
	if err := s0.Update(map[uint64][]byte{0: make([]byte, 3)}); err == nil {
		t.Error("short record accepted")
	}
}

// TestUpdateValidationBeforeEngine: Server.Update must reject a
// wrong-length record with a clear error naming the expected record
// size, before the scheduler quiesces or the engine is touched — the
// update epoch must not move.
func TestUpdateValidationBeforeEngine(t *testing.T) {
	db, _ := GenerateHashDB(64, 1)
	s0, _ := newPair(t, EngineCPU, db)

	for name, bad := range map[string]map[uint64][]byte{
		"short record": {0: make([]byte, 3)},
		"long record":  {0: make([]byte, 33)},
		"out of range": {1 << 20: make([]byte, 32)},
		"huge index":   {^uint64(0): make([]byte, 32)},
		"empty set":    {},
	} {
		err := s0.Update(bad)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !strings.HasPrefix(err.Error(), "impir:") {
			t.Errorf("%s: error %q does not come from the validation layer", name, err)
		}
	}
	if err := s0.Update(map[uint64][]byte{0: make([]byte, 3)}); err == nil ||
		!strings.Contains(err.Error(), "record size 32") {
		t.Errorf("short record error %v does not name the expected record size", err)
	}
	if got := s0.QueueStats().Updates; got != 0 {
		t.Errorf("rejected updates moved the epoch: %d updates applied", got)
	}
}

// TestUpdateDesynchronisedReplicasDetected: if only one server applies an
// update, reconstruction silently corrupts — which is exactly why Dial
// compares digests at connect time. Verify the digests diverge.
func TestUpdateDesynchronisedReplicasDetected(t *testing.T) {
	db, _ := GenerateHashDB(128, 1)
	s0, s1 := newPair(t, EngineCPU, db.Clone())
	if err := s0.Update(map[uint64][]byte{5: bytes.Repeat([]byte{1}, 32)}); err != nil {
		t.Fatal(err)
	}
	if s0.Database().Digest() == s1.Database().Digest() {
		t.Fatal("digest did not change after a one-sided update")
	}
}
