package impir

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/impir/impir/internal/keyword"
	"github.com/impir/impir/internal/metrics"
)

// TestKVStoreE2E is the acceptance-criterion flow: a keyword store
// served over real TCP by two replicas, where Get of a present key
// returns its value, Get of an absent key returns ErrNotFound, and
// both issue byte-identical batch shapes (one k+stash probe batch) per
// server; plus Put/Delete riding the wire-update path.
func TestKVStoreE2E(t *testing.T) {
	pairs := keyword.GeneratePairs(256, 31)
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	addrs, servers := startShardCohort(t, db, 2)
	ctx := context.Background()

	kv, err := DialKV(ctx, addrs, m)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	// Hit: a present key returns its value.
	before := snapshotQueues(servers)
	val, err := kv.Get(ctx, pairs[42].Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(val, pairs[42].Value) {
		t.Fatal("Get returned the wrong value")
	}
	afterHit := snapshotQueues(servers)

	// Miss: an absent key returns ErrNotFound.
	if _, err := kv.Get(ctx, []byte("no-such-key")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}
	afterMiss := snapshotQueues(servers)

	// Per server, hit and miss each cost exactly one admitted request
	// and one engine pass — a single probe batch, identical shape.
	for i := range servers {
		hitReqs := afterHit[i].Submitted - before[i].Submitted
		missReqs := afterMiss[i].Submitted - afterHit[i].Submitted
		hitPasses := afterHit[i].Passes - before[i].Passes
		missPasses := afterMiss[i].Passes - afterHit[i].Passes
		if hitReqs != 1 || missReqs != 1 {
			t.Fatalf("server %d: hit=%d miss=%d admitted requests, want 1 each (identical traffic)", i, hitReqs, missReqs)
		}
		if hitPasses != missPasses {
			t.Fatalf("server %d: hit=%d miss=%d engine passes — shapes differ", i, hitPasses, missPasses)
		}
	}

	// Batched lookups mix hits and misses with no special-casing.
	keys := [][]byte{pairs[0].Key, []byte("missing-a"), pairs[255].Key}
	vals, err := kv.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vals[0], pairs[0].Value) || vals[1] != nil || !bytes.Equal(vals[2], pairs[255].Value) {
		t.Fatal("GetBatch results wrong")
	}

	// Put a fresh key over the wire, read it back, delete it, miss it.
	key, value := []byte("wire-key"), []byte("wire-value")
	if err := kv.Put(ctx, key, value); err != nil {
		t.Fatal(err)
	}
	got, err := kv.Get(ctx, key)
	if err != nil || !bytes.Equal(got, value) {
		t.Fatalf("Get after wire Put: %q, %v", got, err)
	}
	// Overwrite in place.
	if err := kv.Put(ctx, key, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err = kv.Get(ctx, key)
	if err != nil || !bytes.Equal(got, []byte("second")) {
		t.Fatalf("Get after overwrite: %q, %v", got, err)
	}
	if err := kv.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
	}

	st := kv.Stats()
	if st.Hits < 2 || st.Misses < 2 || st.Puts != 2 || st.Deletes != 1 {
		t.Fatalf("stats %v", st)
	}
}

func snapshotQueues(servers []*Server) []metrics.SchedulerStats {
	out := make([]metrics.SchedulerStats, len(servers))
	for i, s := range servers {
		out[i] = s.QueueStats()
	}
	return out
}

// TestKVClusterE2E: the same cuckoo table carved across two shard
// cohorts via SplitDB must answer identically to the unsharded store —
// hits, misses, and batches — through DialKVCluster.
func TestKVClusterE2E(t *testing.T) {
	pairs := keyword.GeneratePairs(200, 17)
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Unsharded reference deployment.
	flatAddrs, _ := startShardCohort(t, db, 2)
	flat, err := DialKV(ctx, flatAddrs, m)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	// Sharded deployment of the same table.
	cm, _ := startCluster(t, db, 2)
	sharded, err := DialKVCluster(ctx, cm, m)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	probe := [][]byte{pairs[0].Key, pairs[99].Key, pairs[199].Key, []byte("absent-1"), []byte("absent-2")}
	for _, key := range probe {
		want, werr := flat.Get(ctx, key)
		got, gerr := sharded.Get(ctx, key)
		if (werr == nil) != (gerr == nil) || (werr != nil && !errors.Is(gerr, ErrNotFound)) {
			t.Fatalf("Get(%q): sharded err %v, unsharded err %v", key, gerr, werr)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("Get(%q): sharded and unsharded values differ", key)
		}
	}

	wantBatch, err := flat.GetBatch(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := sharded.GetBatch(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probe {
		if !bytes.Equal(wantBatch[i], gotBatch[i]) {
			t.Fatalf("GetBatch item %d: sharded and unsharded differ", i)
		}
	}

	// A Put against the sharded store routes the bucket rewrite to the
	// owning cohort and is visible to subsequent sharded lookups.
	if err := sharded.Put(ctx, []byte("shard-key"), []byte("shard-val")); err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Get(ctx, []byte("shard-key"))
	if err != nil || !bytes.Equal(got, []byte("shard-val")) {
		t.Fatalf("sharded Get after Put: %q, %v", got, err)
	}
}

// TestDialKVValidation: dialing with a manifest that does not match the
// served database must fail fast.
func TestDialKVValidation(t *testing.T) {
	pairs := keyword.GeneratePairs(64, 9)
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startShardCohort(t, db, 2)
	ctx := context.Background()

	bad := m
	bad.ValueSize += 8 // record size no longer matches the served DB
	if _, err := DialKV(ctx, addrs, bad); err == nil {
		t.Fatal("mismatched manifest accepted")
	}
	invalid := m
	invalid.HashSeeds = nil
	if _, err := DialKV(ctx, addrs, invalid); err == nil {
		t.Fatal("invalid manifest accepted")
	}
	kv, err := DialKV(ctx, addrs, m)
	if err != nil {
		t.Fatal(err)
	}
	kv.Close()
}
