package impir

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/scheduler"
	"github.com/impir/impir/internal/transport"
)

// startEngineServer serves an engine (behind a scheduler, like the real
// stack) over loopback TCP and returns its address.
func startEngineServer(t *testing.T, eng scheduler.Engine) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched := scheduler.New(eng, scheduler.Config{})
	t.Cleanup(func() { sched.Close() })
	srv, err := transport.NewServer(lis, sched, 0, transport.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestInterceptorOrdering: interceptors run in registration order,
// first outermost — before-invoke hooks fire first-to-last, after-invoke
// hooks unwind last-to-first — and both see the logical call's index.
func TestInterceptorOrdering(t *testing.T) {
	db, _ := GenerateHashDB(256, 5)
	addrs := startDeployment(t, db, 2)
	ctx := context.Background()

	var mu sync.Mutex
	var log []string
	step := func(s string) {
		mu.Lock()
		log = append(log, s)
		mu.Unlock()
	}
	mk := func(name string) UnaryInterceptor {
		return func(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
			if index != 42 {
				t.Errorf("interceptor %s saw index %d", name, index)
			}
			step(name + ":before")
			rec, err := invoke(ctx, index)
			step(name + ":after")
			return rec, err
		}
	}
	store, err := Open(ctx, FlatDeployment(addrs...),
		WithUnaryInterceptor(mk("outer")),
		WithUnaryInterceptor(mk("inner")))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rec, err := store.Retrieve(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, db.Record(42)) {
		t.Fatal("interceptors corrupted the record")
	}
	want := []string{"outer:before", "inner:before", "inner:after", "outer:after"}
	if strings.Join(log, ",") != strings.Join(want, ",") {
		t.Fatalf("interceptor order %v, want %v", log, want)
	}
}

// TestInterceptorShortCircuit: an interceptor that returns without
// invoking stops the chain — inner interceptors never run and nothing
// reaches the wire.
func TestInterceptorShortCircuit(t *testing.T) {
	db, _ := GenerateHashDB(256, 6)
	addrs := startDeployment(t, db, 2)
	ctx := context.Background()

	canned := []byte("cached-record")
	innerRan := false
	store, err := Open(ctx, FlatDeployment(addrs...),
		WithUnaryInterceptor(func(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
			return canned, nil // e.g. a client-side cache hit
		}),
		WithUnaryInterceptor(func(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
			innerRan = true
			return invoke(ctx, index)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rec, err := store.Retrieve(ctx, 7)
	if err != nil || !bytes.Equal(rec, canned) {
		t.Fatalf("short-circuit returned (%q, %v)", rec, err)
	}
	if innerRan {
		t.Fatal("inner interceptor ran after the outer short-circuited")
	}
	if st := store.Stats(); st.Shards[0].Queries != 0 {
		t.Fatalf("short-circuited call still reached the wire: %+v", st.Shards[0])
	}

	boom := errors.New("quota exhausted")
	store2, err := Open(ctx, FlatDeployment(addrs...),
		WithUnaryInterceptor(func(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
			return nil, boom
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if _, err := store2.Retrieve(ctx, 7); !errors.Is(err, boom) {
		t.Fatalf("error short-circuit returned %v", err)
	}
}

// TestBatchInterceptor: the batch chain mirrors the unary chain.
func TestBatchInterceptor(t *testing.T) {
	db, _ := GenerateHashDB(256, 7)
	addrs := startDeployment(t, db, 2)
	ctx := context.Background()

	var seen [][]uint64
	store, err := Open(ctx, FlatDeployment(addrs...),
		WithBatchInterceptor(func(ctx context.Context, indices []uint64, invoke BatchInvoker) ([][]byte, error) {
			seen = append(seen, append([]uint64(nil), indices...))
			return invoke(ctx, indices)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	recs, err := store.RetrieveBatch(ctx, []uint64{1, 99, 200})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range []uint64{1, 99, 200} {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			t.Fatalf("batch item %d wrong", i)
		}
	}
	if len(seen) != 1 || len(seen[0]) != 3 {
		t.Fatalf("batch interceptor saw %v", seen)
	}
}

// TestPerCallOptionsOverrideDefaults: a CallOption on one operation
// overrides the Open-level default for that operation only.
func TestPerCallOptionsOverrideDefaults(t *testing.T) {
	db, _ := GenerateHashDB(256, 8)
	addrs := startDeployment(t, db, 2)
	ctx := context.Background()

	// Open-level default: an unmeetable deadline.
	store, err := Open(ctx, FlatDeployment(addrs...),
		WithDefaultCallOptions(WithCallTimeout(time.Nanosecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if _, err := store.Retrieve(ctx, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("default timeout not applied: %v", err)
	}
	// The per-call override must win.
	rec, err := store.Retrieve(ctx, 3, WithCallTimeout(30*time.Second))
	if err != nil {
		t.Fatalf("per-call timeout did not override the default: %v", err)
	}
	if !bytes.Equal(rec, db.Record(3)) {
		t.Fatal("wrong record")
	}
	// …for that call only: the default still governs the next one.
	if _, err := store.Retrieve(ctx, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("override leaked into the defaults: %v", err)
	}
}

// flakyEngine fails the first failN query passes, then recovers —
// the transient-failure shape a retry budget exists for.
type flakyEngine struct {
	*cpupir.Engine
	mu    sync.Mutex
	failN int
	calls int
}

func (e *flakyEngine) fail() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	if e.calls <= e.failN {
		return fmt.Errorf("transient outage %d", e.calls)
	}
	return nil
}

func (e *flakyEngine) Query(k *dpf.Key) ([]byte, metrics.Breakdown, error) {
	if err := e.fail(); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	return e.Engine.Query(k)
}

func (e *flakyEngine) QueryShare(sh *bitvec.Vector) ([]byte, metrics.Breakdown, error) {
	if err := e.fail(); err != nil {
		return nil, metrics.Breakdown{}, err
	}
	return e.Engine.QueryShare(sh)
}

// TestRetryBudget: a WithRetries budget retries transient failures and
// counts them; without a budget the first failure is final. Context
// expiry is never retried.
func TestRetryBudget(t *testing.T) {
	db, _ := GenerateHashDB(256, 9)
	ctx := context.Background()

	start := func(failN int) []string {
		eng, err := cpupir.New(cpupir.Config{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadDatabase(db); err != nil {
			t.Fatal(err)
		}
		flaky := startEngineServer(t, &flakyEngine{Engine: eng, failN: failN})
		healthy := startDeployment(t, db, 2)
		return []string{flaky, healthy[0]}
	}

	// Budget of 2 covers 2 transient failures.
	store, err := Open(ctx, FlatDeployment(start(2)...), WithDefaultCallOptions(WithRetries(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rec, err := store.Retrieve(ctx, 11)
	if err != nil {
		t.Fatalf("retries exhausted unexpectedly: %v", err)
	}
	if !bytes.Equal(rec, db.Record(11)) {
		t.Fatal("wrong record after retries")
	}
	if st := store.Stats(); st.Retries == 0 {
		t.Fatalf("no retries counted: %+v", st)
	}

	// No budget: the same failure is final.
	store2, err := Open(ctx, FlatDeployment(start(2)...))
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if _, err := store2.Retrieve(ctx, 11); err == nil {
		t.Fatal("transient failure retried without a budget")
	}

	// Cancellation is never retried, whatever the budget.
	store3, err := Open(ctx, FlatDeployment(start(1000)...), WithDefaultCallOptions(WithRetries(1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := store3.Retrieve(cctx, 11); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v", err)
	}
	if st := store3.Stats(); st.Retries > 0 {
		t.Fatalf("cancellation consumed retry budget: %+v", st)
	}
}

// TestClusterInterceptorsRunOncePerLogicalOp: through a ClusterClient
// the interceptor chain and retry accounting wrap the LOGICAL operation
// — once per Retrieve, not once per shard.
func TestClusterInterceptorsRunOncePerLogicalOp(t *testing.T) {
	db, _ := GenerateHashDB(512, 10)
	m, _ := startCluster(t, db, 2)
	ctx := context.Background()

	var mu sync.Mutex
	calls := 0
	d := DeploymentFromManifest(m)
	store, err := Open(ctx, d,
		WithUnaryInterceptor(func(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return invoke(ctx, index)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	if _, ok := store.(*ClusterClient); !ok {
		t.Fatalf("multi-shard deployment opened as %T", store)
	}
	for _, idx := range []uint64{3, 300, 511} {
		rec, err := store.Retrieve(ctx, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			t.Fatalf("record %d wrong through cluster", idx)
		}
	}
	if calls != 3 {
		t.Fatalf("interceptor ran %d times for 3 logical retrievals", calls)
	}
}
