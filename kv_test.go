package impir

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/impir/impir/internal/keyword"
)

// fakeKVStore serves a KV table database in-process and records every
// probe batch, so tests can assert the exact wire shape of lookups —
// the property the privacy argument rests on.
type fakeKVStore struct {
	db      *DB
	batches [][]uint64
	updates []map[uint64][]byte
	failGet bool
}

func (f *fakeKVStore) Retrieve(ctx context.Context, index uint64, opts ...CallOption) ([]byte, error) {
	recs, err := f.RetrieveBatch(ctx, []uint64{index}, opts...)
	if err != nil {
		return nil, err
	}
	return recs[0], nil
}

func (f *fakeKVStore) RetrieveBatch(_ context.Context, indices []uint64, _ ...CallOption) ([][]byte, error) {
	f.batches = append(f.batches, append([]uint64(nil), indices...))
	if f.failGet {
		return nil, errors.New("fake: retrieval failed")
	}
	out := make([][]byte, len(indices))
	for i, idx := range indices {
		if idx >= uint64(f.db.NumRecords()) {
			return nil, fmt.Errorf("fake: index %d out of range", idx)
		}
		out[i] = append([]byte(nil), f.db.Record(int(idx))...)
	}
	return out, nil
}

func (f *fakeKVStore) Update(_ context.Context, updates map[uint64][]byte, _ ...CallOption) error {
	f.updates = append(f.updates, updates)
	for idx, rec := range updates {
		if err := f.db.SetRecord(int(idx), rec); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeKVStore) NumRecords() uint64 { return uint64(f.db.NumRecords()) }
func (f *fakeKVStore) RecordSize() int    { return f.db.RecordSize() }
func (f *fakeKVStore) Stats() StoreStats  { return StoreStats{} }
func (f *fakeKVStore) Close() error       { return nil }

func newTestKV(t *testing.T, n int, seed int64) (*KVClient, *fakeKVStore, []KVPair) {
	t.Helper()
	pairs := keyword.GeneratePairs(n, seed)
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	store := &fakeKVStore{db: db}
	kv, err := newKVClient(store, m)
	if err != nil {
		t.Fatal(err)
	}
	return kv, store, pairs
}

func TestKVGetHitAndMissIdenticalShape(t *testing.T) {
	kv, store, pairs := newTestKV(t, 200, 21)
	ctx := context.Background()

	hit, err := kv.Get(ctx, pairs[17].Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hit, pairs[17].Value) {
		t.Fatal("Get returned the wrong value")
	}
	if _, err := kv.Get(ctx, []byte("absent-key")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}

	// One RetrieveBatch each, identical length — the constant shape.
	if len(store.batches) != 2 {
		t.Fatalf("issued %d probe batches, want 2", len(store.batches))
	}
	want := kv.ProbesPerKey()
	for i, b := range store.batches {
		if len(b) != want {
			t.Fatalf("batch %d probes %d buckets, want %d (hit and miss must match)", i, len(b), want)
		}
	}
	// The stash tail is byte-identical across the two probes.
	m := kv.Manifest()
	k := m.Hashes()
	for i := 0; i < int(m.StashBuckets); i++ {
		if store.batches[0][k+i] != store.batches[1][k+i] {
			t.Fatal("stash probes differ between hit and miss")
		}
	}

	st := kv.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %v, want 2 gets / 1 hit / 1 miss", st)
	}
}

func TestKVGetBatch(t *testing.T) {
	kv, store, pairs := newTestKV(t, 150, 5)
	ctx := context.Background()

	keys := [][]byte{pairs[0].Key, []byte("missing-one"), pairs[149].Key, []byte("missing-two")}
	vals, err := kv.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(keys) {
		t.Fatalf("got %d values for %d keys", len(vals), len(keys))
	}
	if !bytes.Equal(vals[0], pairs[0].Value) || !bytes.Equal(vals[2], pairs[149].Value) {
		t.Fatal("present keys returned wrong values")
	}
	if vals[1] != nil || vals[3] != nil {
		t.Fatal("absent keys returned non-nil values")
	}

	// Shape: n·k candidate probes + the stash once, in one batch.
	m := kv.Manifest()
	wantLen := len(keys)*m.Hashes() + int(m.StashBuckets)
	if len(store.batches) != 1 || len(store.batches[0]) != wantLen {
		t.Fatalf("batch shape %d (in %d round trips), want %d in 1",
			len(store.batches[0]), len(store.batches), wantLen)
	}

	// Empty batch: no network, empty non-nil result.
	empty, err := kv.GetBatch(ctx, nil)
	if err != nil || empty == nil || len(empty) != 0 {
		t.Fatalf("empty GetBatch: %v, %v", empty, err)
	}
	if len(store.batches) != 1 {
		t.Fatal("empty GetBatch touched the store")
	}

	// Oversized key fails before any probe.
	if _, err := kv.GetBatch(ctx, [][]byte{bytes.Repeat([]byte{'x'}, m.KeySize+1)}); !errors.Is(err, keyword.ErrKeyTooLong) {
		t.Fatalf("over-long key: %v, want ErrKeyTooLong", err)
	}
	if len(store.batches) != 1 {
		t.Fatal("invalid key still probed the store")
	}
}

func TestKVPutDelete(t *testing.T) {
	kv, store, pairs := newTestKV(t, 100, 8)
	ctx := context.Background()

	// Insert a fresh key, read it back.
	newKey, newVal := []byte("brand-new"), []byte("inserted-value")
	if err := kv.Put(ctx, newKey, newVal); err != nil {
		t.Fatal(err)
	}
	if len(store.updates) != 1 || len(store.updates[0]) != 1 {
		t.Fatalf("Put pushed %d updates, want exactly one single-bucket rewrite", len(store.updates))
	}
	got, err := kv.Get(ctx, newKey)
	if err != nil || !bytes.Equal(got, newVal) {
		t.Fatalf("Get after Put: %q, %v", got, err)
	}

	// Overwrite an existing key in place.
	if err := kv.Put(ctx, pairs[3].Key, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	got, err = kv.Get(ctx, pairs[3].Key)
	if err != nil || !bytes.Equal(got, []byte("rewritten")) {
		t.Fatalf("Get after overwrite: %q, %v", got, err)
	}

	// Delete and confirm the miss; deleting again reports ErrNotFound
	// without an update.
	updatesBefore := len(store.updates)
	if err := kv.Delete(ctx, pairs[3].Key); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Get(ctx, pairs[3].Key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
	}
	if err := kv.Delete(ctx, pairs[3].Key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: %v, want ErrNotFound", err)
	}
	if len(store.updates) != updatesBefore+1 {
		t.Fatalf("Delete pushed %d updates, want 1", len(store.updates)-updatesBefore)
	}

	// Over-long value rejected before any traffic.
	m := kv.Manifest()
	if err := kv.Put(ctx, []byte("k"), bytes.Repeat([]byte{1}, m.ValueSize+1)); !errors.Is(err, keyword.ErrValueTooLong) {
		t.Fatalf("over-long value: %v, want ErrValueTooLong", err)
	}

	st := kv.Stats()
	if st.Puts != 3 || st.Deletes != 2 || st.Errors != 2 {
		t.Fatalf("stats %v, want 3 puts / 2 deletes / 2 errors", st)
	}
}

// TestKVPutFull drives Put into a table whose candidate buckets and
// stash are all occupied for the new key's probes.
func TestKVPutFull(t *testing.T) {
	// 6 pairs exactly fill the 4 hash + 2 stash slots.
	pairs := keyword.GeneratePairs(6, 6)
	db, m, err := BuildKVDB(pairs, KVTableOptions{
		NumBuckets:     2,
		BucketCapacity: 2,
		Hashes:         2,
		StashBuckets:   1,
		MaxKicks:       16,
		Seed:           6,
	})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := newKVClient(&fakeKVStore{db: db}, m)
	if err != nil {
		t.Fatal(err)
	}
	err = kv.Put(context.Background(), []byte("one-more"), []byte("v"))
	if !errors.Is(err, ErrKVFull) {
		t.Fatalf("Put into a full table: %v, want ErrKVFull", err)
	}
}

// TestKVEmptyValueHit: a key stored with an empty value is a
// membership-set entry, not a miss — Get must return it (as an empty
// non-nil slice), never ErrNotFound.
func TestKVEmptyValueHit(t *testing.T) {
	pairs := []KVPair{
		{Key: []byte("member-1"), Value: nil},
		{Key: []byte("member-2"), Value: []byte{}},
		{Key: []byte("member-3"), Value: []byte("x")},
	}
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := newKVClient(&fakeKVStore{db: db}, m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, key := range [][]byte{[]byte("member-1"), []byte("member-2")} {
		v, err := kv.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get(%q) with empty stored value: %v", key, err)
		}
		if v == nil || len(v) != 0 {
			t.Fatalf("Get(%q) = %v, want empty non-nil value", key, v)
		}
	}
	vals, err := kv.GetBatch(ctx, [][]byte{[]byte("member-1"), []byte("absent")})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == nil {
		t.Fatal("GetBatch reported a present empty-value key as a miss")
	}
	if vals[1] != nil {
		t.Fatal("GetBatch reported an absent key as a hit")
	}
}

func TestKVClientGeometryValidation(t *testing.T) {
	pairs := keyword.GeneratePairs(50, 4)
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong record size: a hash DB, not the bucket encoding.
	hashDB, err := GenerateHashDB(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newKVClient(&fakeKVStore{db: hashDB}, m); err == nil {
		t.Fatal("record-size mismatch accepted")
	}
	// Too few records for the bucket count.
	short, err := NewDatabase(int(m.TotalBuckets())-1, m.RecordSize())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newKVClient(&fakeKVStore{db: short}, m); err == nil {
		t.Fatal("missing buckets accepted")
	}
	// Exact fit passes.
	if _, err := newKVClient(&fakeKVStore{db: db}, m); err != nil {
		t.Fatalf("exact geometry rejected: %v", err)
	}
}

func TestBuildKVDBGeometry(t *testing.T) {
	pairs := keyword.GeneratePairs(300, 12)
	db, m, err := BuildKVDB(pairs, KVTableOptions{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(db.NumRecords()) != m.TotalBuckets() {
		t.Fatalf("DB holds %d records, manifest says %d buckets", db.NumRecords(), m.TotalBuckets())
	}
	if db.RecordSize() != m.RecordSize() {
		t.Fatalf("DB record size %d, manifest bucket size %d", db.RecordSize(), m.RecordSize())
	}
	// The manifest round-trips through the root re-exports.
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseKVManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumBuckets != m.NumBuckets {
		t.Fatal("ParseKVManifest round trip changed the manifest")
	}
}
