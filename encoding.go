package impir

import (
	"context"
	"fmt"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/naivepir"
	"github.com/impir/impir/internal/transport"
)

// Encoding selects how a Client turns a record index into per-server
// query messages. Two encodings ship with the package, matching the two
// schemes the paper evaluates:
//
//   - EncodingDPF: the bandwidth-efficient two-server scheme — a DPF key
//     pair of O(λ·log N) bytes per server. Exactly two servers.
//   - EncodingShares: the naive §2.3 / Figure 2 scheme — an explicit
//     N-bit selector share per server. Any n ≥ 2 servers; privacy holds
//     as long as at least one server does not collude.
//
// EncodingAuto, the Client default, picks DPF for two-server deployments
// and shares otherwise — the per-deployment bandwidth/generality
// tradeoff resolved from the server count. In a sharded deployment the
// resolution happens per cohort: each shard's sub-query is encoded
// against that cohort's replica count and padded record count, so a
// two-replica cohort uses DPF keys while a three-replica cohort in the
// same cluster uses selector shares. The interface is closed;
// deployments choose an encoding, they do not implement new ones.
type Encoding interface {
	// String names the encoding ("auto", "dpf", "shares").
	String() string
	// resolve returns the concrete query coder for an n-server
	// deployment, or an error when the encoding cannot serve it.
	resolve(servers int) (queryCoder, error)
}

// Package-level encoding selectors; pass to WithEncoding.
var (
	// EncodingAuto selects EncodingDPF for two servers and
	// EncodingShares for three or more. The Client default.
	EncodingAuto Encoding = autoEncoding{}
	// EncodingDPF forces the two-server DPF encoding.
	EncodingDPF Encoding = dpfEncoding{}
	// EncodingShares forces the naive share encoding, which works for
	// any deployment size n ≥ 2 at O(N)-bit query cost — including
	// two-server deployments, where it is the communication-ablation
	// baseline of the paper's §5.
	EncodingShares Encoding = shareEncoding{}
)

// ParseEncoding converts a command-line encoding name.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "auto", "":
		return EncodingAuto, nil
	case "dpf":
		return EncodingDPF, nil
	case "shares", "share", "naive":
		return EncodingShares, nil
	default:
		return nil, fmt.Errorf("impir: unknown encoding %q (want auto, dpf, or shares)", s)
	}
}

// geometry is the database shape a deployment's servers agreed on during
// the handshake; coders encode queries against it.
type geometry struct {
	domain     int
	numRecords uint64 // power-of-two padded record count the servers hold
}

// queryCoder generates the per-server wire messages of one encoding for
// a fixed deployment size.
type queryCoder interface {
	name() string
	// encode produces one query message per server for a single index.
	encode(g geometry, servers int, index uint64) ([]serverQuery, error)
	// encodeBatch produces one batched message per server covering all
	// indices, answered in one round trip.
	encodeBatch(g geometry, servers int, indices []uint64) ([]serverQuery, error)
}

// serverQuery is one server's portion of an encoded query, executable
// against that server's connection. do returns one subresult per
// encoded index.
type serverQuery interface {
	do(ctx context.Context, c *transport.Conn) ([][]byte, error)
}

type autoEncoding struct{}

func (autoEncoding) String() string { return "auto" }

func (autoEncoding) resolve(servers int) (queryCoder, error) {
	if servers == 2 {
		return dpfCoder{}, nil
	}
	return shareCoder{}, nil
}

type dpfEncoding struct{}

func (dpfEncoding) String() string { return "dpf" }

func (dpfEncoding) resolve(servers int) (queryCoder, error) {
	if servers != 2 {
		return nil, fmt.Errorf("impir: the DPF encoding is two-party, deployment has %d servers (use EncodingShares)", servers)
	}
	return dpfCoder{}, nil
}

type shareEncoding struct{}

func (shareEncoding) String() string { return "shares" }

func (shareEncoding) resolve(servers int) (queryCoder, error) {
	if servers < naivepir.MinServers {
		return nil, fmt.Errorf("impir: need ≥ %d servers, got %d", naivepir.MinServers, servers)
	}
	return shareCoder{}, nil
}

// dpfCoder encodes queries as DPF key pairs.
type dpfCoder struct{}

func (dpfCoder) name() string { return "dpf" }

func (dpfCoder) encode(g geometry, servers int, index uint64) ([]serverQuery, error) {
	k0, k1, err := dpf.Gen(dpf.Params{Domain: g.domain}, index, nil)
	if err != nil {
		return nil, err
	}
	return []serverQuery{keyQuery{k0}, keyQuery{k1}}, nil
}

func (dpfCoder) encodeBatch(g geometry, servers int, indices []uint64) ([]serverQuery, error) {
	keys0 := make([]*dpf.Key, len(indices))
	keys1 := make([]*dpf.Key, len(indices))
	for i, idx := range indices {
		k0, k1, err := dpf.Gen(dpf.Params{Domain: g.domain}, idx, nil)
		if err != nil {
			return nil, err
		}
		keys0[i], keys1[i] = k0, k1
	}
	return []serverQuery{keyBatchQuery{keys0}, keyBatchQuery{keys1}}, nil
}

// shareCoder encodes queries as explicit selector shares over the padded
// index space (the servers pad databases to powers of two, so shares
// must cover the padded record count to match).
type shareCoder struct{}

func (shareCoder) name() string { return "shares" }

func (shareCoder) encode(g geometry, servers int, index uint64) ([]serverQuery, error) {
	q, err := naivepir.Gen(nil, int(g.numRecords), index, servers)
	if err != nil {
		return nil, err
	}
	out := make([]serverQuery, servers)
	for s, share := range q.Shares {
		out[s] = shareQuery{share}
	}
	return out, nil
}

func (shareCoder) encodeBatch(g geometry, servers int, indices []uint64) ([]serverQuery, error) {
	perServer := make([][]*bitvec.Vector, servers)
	for s := range perServer {
		perServer[s] = make([]*bitvec.Vector, len(indices))
	}
	for i, idx := range indices {
		q, err := naivepir.Gen(nil, int(g.numRecords), idx, servers)
		if err != nil {
			return nil, err
		}
		for s, share := range q.Shares {
			perServer[s][i] = share
		}
	}
	out := make([]serverQuery, servers)
	for s := range out {
		out[s] = shareBatchQuery{perServer[s]}
	}
	return out, nil
}

type keyQuery struct{ key *dpf.Key }

func (q keyQuery) do(ctx context.Context, c *transport.Conn) ([][]byte, error) {
	r, err := c.Query(ctx, q.key)
	if err != nil {
		return nil, err
	}
	return [][]byte{r}, nil
}

type keyBatchQuery struct{ keys []*dpf.Key }

func (q keyBatchQuery) do(ctx context.Context, c *transport.Conn) ([][]byte, error) {
	return c.QueryBatch(ctx, q.keys)
}

type shareQuery struct{ share *bitvec.Vector }

func (q shareQuery) do(ctx context.Context, c *transport.Conn) ([][]byte, error) {
	r, err := c.QueryShare(ctx, q.share)
	if err != nil {
		return nil, err
	}
	return [][]byte{r}, nil
}

type shareBatchQuery struct{ shares []*bitvec.Vector }

func (q shareBatchQuery) do(ctx context.Context, c *transport.Conn) ([][]byte, error) {
	return c.QueryShareBatch(ctx, q.shares)
}
