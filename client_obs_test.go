package impir

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/impir/impir/internal/obs"
)

func TestClientObsOutcomesAndExposition(t *testing.T) {
	co := NewClientObs()
	ctx := context.Background()

	okInvoke := func(ctx context.Context, index uint64) ([]byte, error) { return []byte{1}, nil }
	busyInvoke := func(ctx context.Context, index uint64) ([]byte, error) { return nil, ErrServerBusy }
	errInvoke := func(ctx context.Context, index uint64) ([]byte, error) { return nil, errors.New("boom") }

	if _, err := co.interceptUnary(ctx, 1, okInvoke); err != nil {
		t.Fatal(err)
	}
	if _, err := co.interceptUnary(ctx, 2, busyInvoke); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("busy error not passed through: %v", err)
	}
	if _, err := co.interceptUnary(ctx, 3, errInvoke); err == nil {
		t.Fatal("error not passed through")
	}
	if _, err := co.interceptBatch(ctx, []uint64{1, 2}, func(ctx context.Context, idx []uint64) ([][]byte, error) {
		return make([][]byte, len(idx)), nil
	}); err != nil {
		t.Fatal(err)
	}

	snap := co.Snapshot()
	if snap.Retrieve.Calls != 3 || snap.Retrieve.Errors != 2 || snap.Retrieve.Busy != 1 {
		t.Errorf("Retrieve stats = %+v, want calls=3 errors=2 busy=1", snap.Retrieve)
	}
	if snap.RetrieveBatch.Calls != 1 || snap.RetrieveBatch.Errors != 0 {
		t.Errorf("RetrieveBatch stats = %+v, want calls=1 errors=0", snap.RetrieveBatch)
	}
	// Sub-microsecond invokes sit below the histogram's unit, so only
	// ordering is asserted, not positivity.
	if snap.Retrieve.Max < snap.Retrieve.P50 || snap.Retrieve.P99 < snap.Retrieve.P50 {
		t.Errorf("latency quantiles out of order: %+v", snap.Retrieve)
	}

	// The exposition carries the same truth, through the same parser
	// the loadgen cross-check uses.
	rec := httptest.NewRecorder()
	co.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	samples, err := obs.ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	for sample, want := range map[string]float64{
		`impir_client_requests_total{op="retrieve",outcome="ok"}`:       1,
		`impir_client_requests_total{op="retrieve",outcome="busy"}`:     1,
		`impir_client_requests_total{op="retrieve",outcome="error"}`:    1,
		`impir_client_requests_total{op="retrieve_batch",outcome="ok"}`: 1,
		`impir_client_latency_seconds_count{op="retrieve"}`:             3,
	} {
		if got := samples[sample]; got != want {
			t.Errorf("%s = %v, want %v", sample, got, want)
		}
	}
}
