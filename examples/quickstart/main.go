// Quickstart: two-server PIR in a single process.
//
// Builds a 4096-record database, replicates it onto two IM-PIR servers
// (each with a simulated PIM system), retrieves one record privately, and
// shows why neither server learns the query: their individual subresults
// are pseudorandom, and only their XOR is the record. It then serves the
// same pair over loopback TCP and repeats the retrieval through the
// production surface — impir.Open over a deployment manifest.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"

	"github.com/impir/impir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		numRecords = 4096
		queryIndex = 1337
	)

	// The public database: 32-byte hash records, as in the paper's
	// evaluation (think certificate hashes or breached-credential
	// digests).
	db, err := impir.GenerateHashDB(numRecords, 42)
	if err != nil {
		return err
	}
	fmt.Printf("database: %d records × %d bytes\n", db.NumRecords(), db.RecordSize())

	// Two non-colluding servers, each holding a full replica. The zero
	// ServerConfig is the paper's IM-PIR setup; we shrink the simulated
	// PIM machine so the example runs instantly.
	cfg := impir.ServerConfig{Engine: impir.EnginePIM, DPUs: 16, Tasklets: 8}
	server0, err := impir.NewServer(cfg)
	if err != nil {
		return err
	}
	defer server0.Close()
	server1, err := impir.NewServer(cfg)
	if err != nil {
		return err
	}
	defer server1.Close()
	if err := server0.Load(db); err != nil {
		return err
	}
	if err := server1.Load(db); err != nil {
		return err
	}

	// Client: encode the query as a DPF key pair. Each key alone is
	// pseudorandom — it reveals nothing about queryIndex.
	k0, k1, err := impir.GenerateKeys(db.NumRecords(), queryIndex)
	if err != nil {
		return err
	}
	fmt.Printf("query for index %d encoded as two %d-byte keys\n", queryIndex, k0.WireSize())

	// Each server evaluates its key over the whole database (the
	// all-for-one principle) and returns a subresult.
	ctx := context.Background()
	r0, breakdown, err := server0.Answer(ctx, k0)
	if err != nil {
		return err
	}
	r1, _, err := server1.Answer(ctx, k1)
	if err != nil {
		return err
	}

	// Individually the subresults look like noise…
	fmt.Printf("server 0 subresult: %x…\n", r0[:8])
	fmt.Printf("server 1 subresult: %x…\n", r1[:8])
	if bytes.Equal(r0, db.Record(queryIndex)) || bytes.Equal(r1, db.Record(queryIndex)) {
		return fmt.Errorf("a single subresult equals the record — this must never happen")
	}

	// …but their XOR is exactly the queried record.
	record, err := impir.Reconstruct(r0, r1)
	if err != nil {
		return err
	}
	fmt.Printf("reconstructed:      %x…\n", record[:8])
	if !bytes.Equal(record, db.Record(queryIndex)) {
		return fmt.Errorf("reconstruction failed")
	}
	fmt.Println("reconstruction matches db.Record(1337) ✓")

	fmt.Printf("\nserver-side phase breakdown (modeled on the paper's hardware):\n  %s\n", breakdown.String())

	// The same protocol through the production surface: serve both
	// replicas over TCP and drive them with impir.Open — one deployment
	// manifest, one Store, the encoding and fan-out handled inside.
	var addrs []string
	for i, srv := range []*impir.Server{server0, server1} {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			return err
		}
		addrs = append(addrs, srv.Addr().String())
	}
	store, err := impir.Open(ctx, impir.FlatDeployment(addrs...))
	if err != nil {
		return err
	}
	defer store.Close()
	record, err = store.Retrieve(ctx, queryIndex)
	if err != nil {
		return err
	}
	if !bytes.Equal(record, db.Record(queryIndex)) {
		return fmt.Errorf("network reconstruction failed")
	}
	fmt.Printf("\nsame retrieval over TCP via impir.Open: %x… ✓\n", record[:8])
	return nil
}
