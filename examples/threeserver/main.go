// Three-server PIR with the naive share encoding (§2.3 / Figure 2).
//
// The DPF encoding used elsewhere in this module is two-party; the
// paper's naive scheme generalises to any number of servers at the cost
// of O(N)-bit queries. With three servers, privacy survives even if two
// of them collude pairwise-not-all: the client is protected as long as at
// least one server keeps its share to itself.
//
// This example deploys three servers over TCP (each running a different
// engine — the subresults must agree regardless) and retrieves records
// through the MultiSession API, printing the communication cost the
// O(N) encoding pays compared to DPF keys.
//
//	go run ./examples/threeserver
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"github.com/impir/impir"
)

const (
	dbRecords = 4096
	dbSeed    = 99
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := impir.GenerateHashDB(dbRecords, dbSeed)
	if err != nil {
		return err
	}

	// Three non-colluding operators; deliberately heterogeneous engines.
	engines := []impir.EngineKind{impir.EnginePIM, impir.EngineCPU, impir.EngineGPU}
	addrs := make([]string, len(engines))
	for i, kind := range engines {
		srv, err := impir.NewServer(impir.ServerConfig{
			Engine: kind, DPUs: 16, Tasklets: 8, Threads: 2,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := srv.Load(db); err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			return err
		}
		addrs[i] = srv.Addr().String()
		fmt.Printf("server %d: %s engine on %s\n", i, srv.EngineName(), srv.Addr())
	}

	sess, err := impir.ConnectMulti(addrs...)
	if err != nil {
		return err
	}
	defer sess.Close()
	fmt.Printf("\nconnected to %d servers, replicas verified (%d records × %d B)\n",
		sess.Servers(), sess.NumRecords(), sess.RecordSize())

	const index = 2025
	rec, err := sess.Retrieve(index)
	if err != nil {
		return err
	}
	if !bytes.Equal(rec, db.Record(index)) {
		return fmt.Errorf("retrieved record does not match the database")
	}
	fmt.Printf("record[%d] = %x… retrieved correctly\n\n", index, rec[:8])

	// The price of n-server generality: O(N) bits per server.
	shares, err := impir.GenerateShares(dbRecords, index, 3)
	if err != nil {
		return err
	}
	k0, _, err := impir.GenerateKeys(dbRecords, index)
	if err != nil {
		return err
	}
	fmt.Printf("query cost per server: %d B as a share vs %d B as a DPF key (%.0fx)\n",
		shares[0].Len()/8, k0.WireSize(), float64(shares[0].Len()/8)/float64(k0.WireSize()))
	fmt.Println("privacy now holds unless ALL three servers collude")
	return nil
}
