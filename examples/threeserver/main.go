// Three-server PIR with the naive share encoding (§2.3 / Figure 2).
//
// The DPF encoding used elsewhere in this module is two-party; the
// paper's naive scheme generalises to any number of servers at the cost
// of O(N)-bit queries. With three servers, privacy survives even if two
// of them collude pairwise-not-all: the client is protected as long as at
// least one server keeps its share to itself.
//
// This example deploys three servers over TCP (each running a different
// engine — the subresults must agree regardless) and retrieves records
// through the Client API, which selects the share encoding automatically
// from the server count and queries all three servers concurrently. It
// also batches several retrievals into one round trip per server, and
// prints the communication cost the O(N) encoding pays compared to DPF
// keys.
//
//	go run ./examples/threeserver
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"

	"github.com/impir/impir"
)

const (
	dbRecords = 4096
	dbSeed    = 99
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := impir.GenerateHashDB(dbRecords, dbSeed)
	if err != nil {
		return err
	}

	// Three non-colluding operators; deliberately heterogeneous engines.
	engines := []impir.EngineKind{impir.EnginePIM, impir.EngineCPU, impir.EngineGPU}
	addrs := make([]string, len(engines))
	for i, kind := range engines {
		srv, err := impir.NewServer(impir.ServerConfig{
			Engine: kind, DPUs: 16, Tasklets: 8, Threads: 2,
			// Bound the admission queue so overload rejects busy instead
			// of queueing without limit. (A CoalesceWindow would be dead
			// weight here: coalescing merges single DPF queries, and an
			// n-server deployment's clients send share queries.)
			QueueDepth: 512,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := srv.Load(db); err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			return err
		}
		addrs[i] = srv.Addr().String()
		fmt.Printf("server %d: %s engine on %s\n", i, srv.EngineName(), srv.Addr())
	}

	// EncodingAuto resolves to the share encoding for 3+ servers; the
	// explicit option below just makes the choice visible.
	ctx := context.Background()
	store, err := impir.Open(ctx, impir.FlatDeployment(addrs...), impir.WithEncoding(impir.EncodingShares))
	if err != nil {
		return err
	}
	defer store.Close()
	cli := store.(*impir.Client) // flat deployments open as *Client
	fmt.Printf("\nconnected to %d servers, replicas verified (%d records × %d B, %s encoding)\n",
		cli.Servers(), cli.NumRecords(), cli.RecordSize(), cli.Encoding())

	const index = 2025
	rec, err := cli.Retrieve(ctx, index)
	if err != nil {
		return err
	}
	if !bytes.Equal(rec, db.Record(index)) {
		return fmt.Errorf("retrieved record does not match the database")
	}
	fmt.Printf("record[%d] = %x… retrieved correctly\n", index, rec[:8])

	// Batched n-server retrieval: every index in one round trip per
	// server.
	indices := []uint64{3, 777, 4095}
	recs, err := cli.RetrieveBatch(ctx, indices)
	if err != nil {
		return err
	}
	for i, idx := range indices {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			return fmt.Errorf("batch item %d does not match the database", i)
		}
	}
	fmt.Printf("batch of %d records retrieved in one round trip per server\n\n", len(indices))

	// The price of n-server generality: O(N) bits per server.
	shares, err := impir.GenerateShares(dbRecords, index, 3)
	if err != nil {
		return err
	}
	k0, _, err := impir.GenerateKeys(dbRecords, index)
	if err != nil {
		return err
	}
	fmt.Printf("query cost per server: %d B as a share vs %d B as a DPF key (%.0fx)\n",
		shares[0].Len()/8, k0.WireSize(), float64(shares[0].Len()/8)/float64(k0.WireSize()))
	fmt.Println("privacy now holds unless ALL three servers collude")
	return nil
}
