// Private blocklist lookups with keyword PIR — no shipped directory.
//
// A browser checking visited URLs against a malware blocklist leaks its
// browsing history to the blocklist provider unless lookups are private
// (the Checklist use case [60], cited in §1 of the paper). Earlier
// revisions of this example shipped the browser a plaintext url→index
// directory and retrieved entries by index; the directory itself both
// scaled with the blocklist and disclosed the full list of blocked URLs
// to every client. This version drops it: the provider builds a
// cuckoo-hashed key→value table keyed by URL hash (value: the threat
// category), serves it from two non-colluding replicas over TCP, and
// clients look URLs up with KVClient.Get — a constant-shape probe batch
// per URL from which the servers learn neither the URL nor whether it
// was blocklisted at all.
//
//	go run ./examples/blocklist
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"

	"github.com/impir/impir"
)

const (
	blocklistSize = 8192
	blocklistSeed = 13
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ——— Provider side: blocklist → cuckoo table → two replicas ———
	_, urls, err := impir.GenerateBlocklist(blocklistSize, blocklistSeed)
	if err != nil {
		return err
	}
	categories := []string{"malware", "phishing", "c2", "scam"}
	pairs := make([]impir.KVPair, len(urls))
	for i, u := range urls {
		h := impir.CredentialHash(u)
		pairs[i] = impir.KVPair{
			Key:   append([]byte(nil), h[:]...),
			Value: []byte(categories[i%len(categories)]),
		}
	}
	db, manifest, err := impir.BuildKVDB(pairs, impir.KVTableOptions{Seed: blocklistSeed})
	if err != nil {
		return err
	}

	addrs := make([]string, 2)
	for i := range addrs {
		srv, err := impir.NewServer(impir.ServerConfig{Engine: impir.EnginePIM, DPUs: 16, Tasklets: 8, EvalWorkers: 2})
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := srv.Load(db.Clone()); err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			return err
		}
		addrs[i] = srv.Addr().String()
	}
	fmt.Printf("blocklist: %d URLs in %d+%d buckets; clients receive only the table manifest\n",
		blocklistSize, manifest.NumBuckets, manifest.StashBuckets)

	// ——— Browser side: one deployment manifest is all a browser ships ———
	ctx := context.Background()
	kv, err := impir.OpenKV(ctx, impir.FlatDeployment(addrs...).WithKeyword(manifest))
	if err != nil {
		return err
	}
	defer kv.Close()

	visited := []string{
		urls[4321], // malicious
		"https://example.org/totally-fine",
		urls[17], // malicious
	}
	for _, u := range visited {
		h := impir.CredentialHash(u)
		category, err := kv.Get(ctx, h[:])
		switch {
		case errors.Is(err, impir.ErrNotFound):
			fmt.Printf("%-45s not blocklisted\n", clip(u))
		case err != nil:
			return err
		default:
			fmt.Printf("%-45s BLOCKED (%s)\n", clip(u), category)
		}
	}

	fmt.Printf("\nclient counters: %v\n", kv.Stats())
	fmt.Println("no server learned which URLs were visited — or whether any was blocked")
	return nil
}

func clip(s string) string {
	if len(s) > 42 {
		return s[:39] + "..."
	}
	return s
}
