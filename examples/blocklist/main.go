// Private blocklist lookups — and an engine comparison.
//
// A browser checking visited URLs against a malware blocklist leaks its
// browsing history to the blocklist provider unless lookups are private
// (the Checklist use case [60], cited in §1 of the paper). This example
// runs the same private-lookup workload on all three server engines the
// paper evaluates — CPU-PIR, GPU-PIR, IM-PIR — verifying they agree
// bit-for-bit and printing each engine's modeled per-query phase
// breakdown, a miniature of the paper's Figure 10 / Table 1 comparison.
//
//	go run ./examples/blocklist
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/impir/impir"
)

const (
	blocklistSize = 8192
	blocklistSeed = 13
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, urls, err := impir.GenerateBlocklist(blocklistSize, blocklistSeed)
	if err != nil {
		return err
	}

	// The browser's local url→index directory (in deployments this is a
	// compressed map shipped with blocklist updates).
	directory := make(map[[32]byte]uint64, len(urls))
	for i, u := range urls {
		directory[impir.CredentialHash(u)] = uint64(i)
	}

	visited := []string{
		urls[4321], // malicious
		"https://example.org/totally-fine",
		urls[17], // malicious
	}

	engines := []impir.EngineKind{impir.EngineCPU, impir.EngineGPU, impir.EnginePIM}
	type serverPair struct{ s0, s1 *impir.Server }
	pairs := make(map[impir.EngineKind]serverPair)
	for _, kind := range engines {
		cfg := impir.ServerConfig{Engine: kind, DPUs: 16, Tasklets: 8, Threads: 2}
		s0, err := impir.NewServer(cfg)
		if err != nil {
			return err
		}
		s1, err := impir.NewServer(cfg)
		if err != nil {
			return err
		}
		defer s0.Close()
		defer s1.Close()
		if err := s0.Load(db); err != nil {
			return err
		}
		if err := s1.Load(db); err != nil {
			return err
		}
		pairs[kind] = serverPair{s0, s1}
	}

	ctx := context.Background()
	for _, u := range visited {
		idx, listed := directory[impir.CredentialHash(u)]
		if !listed {
			fmt.Printf("%-45s not blocklisted\n", clip(u))
			continue
		}

		k0, k1, err := impir.GenerateKeys(db.NumRecords(), idx)
		if err != nil {
			return err
		}

		// Run the identical query on every engine; all must agree.
		var reference []byte
		for _, kind := range engines {
			p := pairs[kind]
			r0, bd, err := p.s0.Answer(ctx, k0)
			if err != nil {
				return err
			}
			r1, _, err := p.s1.Answer(ctx, k1)
			if err != nil {
				return err
			}
			rec, err := impir.Reconstruct(r0, r1)
			if err != nil {
				return err
			}
			if reference == nil {
				reference = rec
			} else if !bytes.Equal(reference, rec) {
				return fmt.Errorf("engine %v disagrees with the others", kind)
			}
			if kind == impir.EnginePIM {
				fmt.Printf("%-45s BLOCKED (verified on all engines; IM-PIR phases: %s)\n",
					clip(u), bd.String())
			}
		}
		want := impir.CredentialHash(u)
		if !bytes.Equal(reference, want[:]) {
			return fmt.Errorf("retrieved blocklist entry does not match %q", u)
		}
	}

	fmt.Println("\nno server learned which URLs were visited")
	return nil
}

func clip(s string) string {
	if len(s) > 42 {
		return s[:39] + "..."
	}
	return s
}
