// Single-server PIR (§2.2 / Figure 1) — and why IM-PIR doesn't use it.
//
// Single-server PIR needs no non-collusion assumption: one server, and
// privacy rests on cryptographic hardness. The price is homomorphic
// arithmetic over every record. This example runs the paper's Figure 1
// construction end-to-end on the Paillier substrate, then performs the
// same retrieval with two-server XOR PIR and compares the server-side
// cost per record — the quantitative basis for the paper's Take-away 1
// (multi-server PIR fits PIM; FHE-style PIR does not).
//
// The multi-server scheme this example motivates is what the rest of
// the module deploys: impir.Open drives any multi-server topology (a
// flat pair, shards, replica sets per party) from one deployment
// manifest — see examples/quickstart and examples/sharded.
//
//	go run ./examples/singleserver
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/singleserver"
)

const (
	numRecords = 128
	queryIndex = 77
	keyBits    = 1024
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := database.GenerateHashDB(numRecords, 11)
	if err != nil {
		return err
	}

	// --- Figure 1: homomorphic single-server PIR ---
	fmt.Printf("single-server PIR over %d records (Paillier-%d):\n", numRecords, keyBits)
	client, err := singleserver.NewClient(nil, keyBits)
	if err != nil {
		return err
	}
	server, err := singleserver.NewServer(db)
	if err != nil {
		return err
	}

	genStart := time.Now()
	query, err := client.BuildQuery(queryIndex, numRecords) // ➊-➋ encrypt one-hot vector
	if err != nil {
		return err
	}
	genTime := time.Since(genStart)

	resp, err := server.Answer(query) // ➍-➎ homomorphic dot product
	if err != nil {
		return err
	}
	record, err := client.Decrypt(resp, db.RecordSize()) // ➐
	if err != nil {
		return err
	}
	if !bytes.Equal(record, db.Record(queryIndex)) {
		return fmt.Errorf("single-server reconstruction failed")
	}
	fmt.Printf("  client query build: %v (%d ciphertexts)\n", genTime.Round(time.Millisecond), numRecords)
	fmt.Printf("  server answer:      %v (%v per record)\n",
		resp.ServerTime.Round(time.Millisecond),
		(resp.ServerTime / numRecords).Round(time.Microsecond))
	fmt.Printf("  record correct ✓ — and no non-collusion assumption needed\n\n")

	// --- The same retrieval, two-server XOR PIR ---
	fmt.Println("two-server XOR PIR over the same records:")
	pub, err := impir.GenerateHashDB(numRecords, 11)
	if err != nil {
		return err
	}
	s0, err := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
	if err != nil {
		return err
	}
	defer s0.Close()
	s1, err := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
	if err != nil {
		return err
	}
	defer s1.Close()
	if err := s0.Load(pub); err != nil {
		return err
	}
	if err := s1.Load(pub); err != nil {
		return err
	}
	k0, k1, err := impir.GenerateKeys(pub.NumRecords(), queryIndex)
	if err != nil {
		return err
	}
	start := time.Now()
	r0, _, err := s0.Answer(context.Background(), k0)
	if err != nil {
		return err
	}
	r1, _, err := s1.Answer(context.Background(), k1)
	if err != nil {
		return err
	}
	xorTime := time.Since(start)
	rec, err := impir.Reconstruct(r0, r1)
	if err != nil {
		return err
	}
	if !bytes.Equal(rec, pub.Record(queryIndex)) {
		return fmt.Errorf("two-server reconstruction failed")
	}
	fmt.Printf("  both servers answered in %v total\n", xorTime.Round(time.Microsecond))
	fmt.Printf("  record correct ✓ — but two non-colluding operators required\n\n")

	ratio := float64(resp.ServerTime) / float64(xorTime/2)
	fmt.Printf("server-side cost ratio (homomorphic vs XOR): ≈%.0fx on %d records\n", ratio, numRecords)
	fmt.Println("XOR-class work is what UPMEM DPUs can execute in memory (Take-away 1);")
	fmt.Println("modular exponentiation is not — hence IM-PIR targets multi-server PIR")
	return nil
}
