// Compromised-credential checking with keyword PIR — no shipped
// directory.
//
// A password manager wants to warn users whose passwords appear in a
// breach corpus — without sending password material (or even its hash) to
// the corpus operator, and without learning patterns from which entry was
// checked. Have-I-Been-Pwned-style services approximate this with
// k-anonymity buckets; PIR gives the exact guarantee (§5.2 of the paper,
// cf. [43, 53]).
//
// Earlier revisions of this example shipped every client a plaintext
// hash→index directory and then did PIR by index. That directory is the
// weak link: it grows linearly with the corpus, must be re-shipped on
// every update, and hands the full corpus fingerprint to every client.
// This version drops it. The operator builds a cuckoo-hashed key→value
// table (impir.BuildKVDB) keyed by credential hash, serves it from two
// non-colluding replicas over TCP, and publishes only the small table
// manifest (bucket geometry + hash seeds — no key material). The client
// then checks all passwords in ONE batched KVClient.GetBatch: a
// constant-shape probe batch from which the servers learn neither the
// hashes nor whether any password was actually breached.
//
//	go run ./examples/credcheck
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/impir/impir"
)

const (
	corpusSize = 16384
	corpusSeed = 77
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ——— Operator side: breach corpus → cuckoo table → two replicas ———
	_, breached, err := impir.GenerateCredentialDB(corpusSize, corpusSeed)
	if err != nil {
		return err
	}
	pairs := make([]impir.KVPair, len(breached))
	for i, cred := range breached {
		h := impir.CredentialHash(cred)
		// Key: the credential hash. Value: per-entry breach metadata —
		// here the corpus entry's own digest, standing in for breach
		// count / first-seen fields a real deployment would store.
		pairs[i] = impir.KVPair{Key: append([]byte(nil), h[:]...), Value: h[:16]}
	}
	db, manifest, err := impir.BuildKVDB(pairs, impir.KVTableOptions{Seed: corpusSeed})
	if err != nil {
		return err
	}

	addrs := make([]string, 2)
	for i := range addrs {
		srv, err := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, Threads: 2})
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := srv.Load(db.Clone()); err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			return err
		}
		addrs[i] = srv.Addr().String()
	}
	fmt.Printf("corpus: %d breached credentials in %d+%d buckets (%d-probe lookups); clients receive only the manifest\n",
		corpusSize, manifest.NumBuckets, manifest.StashBuckets, manifest.ProbesPerKey())

	// ——— Client side: one deployment manifest, nothing else ———
	ctx := context.Background()
	kv, err := impir.OpenKV(ctx, impir.FlatDeployment(addrs...).WithKeyword(manifest))
	if err != nil {
		return err
	}
	defer kv.Close()

	// The user's passwords to check: two breached, one safe.
	passwords := []string{breached[1234], "correct horse battery staple", breached[8000]}
	keys := make([][]byte, len(passwords))
	for i, pw := range passwords {
		h := impir.CredentialHash(pw)
		keys[i] = append([]byte(nil), h[:]...)
	}

	start := time.Now()
	values, err := kv.GetBatch(ctx, keys)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	for i, pw := range passwords {
		h := impir.CredentialHash(pw)
		switch {
		case values[i] == nil:
			fmt.Printf("%-40q not in the corpus — safe\n", clip(pw))
		case bytes.Equal(values[i], h[:16]):
			fmt.Printf("%-40q BREACHED — rotate this password\n", clip(pw))
		default:
			fmt.Printf("%-40q corpus metadata mismatch — treat as breached\n", clip(pw))
		}
	}

	st := kv.Stats()
	fmt.Printf("\nchecked %d credentials in %v (one %d-bucket probe batch per server)\n",
		len(passwords), elapsed.Round(time.Millisecond),
		len(passwords)*manifest.Hashes()+int(manifest.StashBuckets))
	fmt.Printf("client counters: %v\n", st)
	fmt.Println("the corpus operators never saw a password, a hash, which entries were read — or whether anything matched")
	return nil
}

func clip(s string) string {
	if len(s) > 24 {
		return s[:21] + "..."
	}
	return s
}
