// Compromised-credential checking with batched PIR.
//
// A password manager wants to warn users whose passwords appear in a
// breach corpus — without sending password material (or even its hash) to
// the corpus operator, and without learning patterns from which entry was
// checked. Have-I-Been-Pwned-style services approximate this with
// k-anonymity buckets; PIR gives the exact guarantee (§5.2 of the paper,
// cf. [43, 53]).
//
// The deployment ships clients a public directory mapping credential hash
// → corpus index (here: a map built from the synthetic corpus). The
// client looks up candidate indices locally, then retrieves those corpus
// entries through batched two-server PIR and compares hashes locally.
//
//	go run ./examples/credcheck
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/impir/impir"
)

const (
	corpusSize = 16384
	corpusSeed = 77
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Breach corpus, replicated on two non-colluding servers (in-process
	// here; see examples/certtransparency for the TCP variant).
	db, breached, err := impir.GenerateCredentialDB(corpusSize, corpusSeed)
	if err != nil {
		return err
	}
	cfg := impir.ServerConfig{Engine: impir.EnginePIM, DPUs: 16, Tasklets: 8, EvalWorkers: 2}
	s0, err := impir.NewServer(cfg)
	if err != nil {
		return err
	}
	defer s0.Close()
	s1, err := impir.NewServer(cfg)
	if err != nil {
		return err
	}
	defer s1.Close()
	if err := s0.Load(db); err != nil {
		return err
	}
	if err := s1.Load(db); err != nil {
		return err
	}

	// Public hash→index directory (shipped to clients out of band).
	directory := make(map[[32]byte]uint64, corpusSize)
	for i, cred := range breached {
		directory[impir.CredentialHash(cred)] = uint64(i)
	}

	// The user's passwords to check: two breached, one safe.
	passwords := []string{breached[1234], "correct horse battery staple", breached[8000]}

	// Build the query batch. Passwords not in the directory cannot be
	// breached; for the ones that are, retrieve the corpus entry to
	// confirm (the directory alone could have false positives in a
	// bucketed deployment).
	type candidate struct {
		password string
		index    uint64
	}
	var candidates []candidate
	for _, pw := range passwords {
		if idx, ok := directory[impir.CredentialHash(pw)]; ok {
			candidates = append(candidates, candidate{password: pw, index: idx})
		} else {
			fmt.Printf("%-40q not in directory — safe\n", clip(pw))
		}
	}
	if len(candidates) == 0 {
		return nil
	}

	keys0 := make([]*impir.Key, len(candidates))
	keys1 := make([]*impir.Key, len(candidates))
	for i, c := range candidates {
		keys0[i], keys1[i], err = impir.GenerateKeys(db.NumRecords(), c.index)
		if err != nil {
			return err
		}
	}

	// Batched server-side processing (§3.4 pipeline).
	ctx := context.Background()
	start := time.Now()
	r0, stats, err := s0.AnswerBatch(ctx, keys0)
	if err != nil {
		return err
	}
	r1, _, err := s1.AnswerBatch(ctx, keys1)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	for i, c := range candidates {
		entry, err := impir.Reconstruct(r0[i], r1[i])
		if err != nil {
			return err
		}
		hash := impir.CredentialHash(c.password)
		if bytes.Equal(entry, hash[:]) {
			fmt.Printf("%-40q BREACHED — rotate this password\n", clip(c.password))
		} else {
			fmt.Printf("%-40q directory hit but corpus mismatch — safe\n", clip(c.password))
		}
	}

	fmt.Printf("\nchecked %d credentials in %v wall (modeled server throughput: %.0f queries/s)\n",
		len(candidates), elapsed.Round(time.Millisecond), stats.ModeledQPS())
	fmt.Println("the corpus operators never saw a password, a hash, or which entries were read")
	return nil
}

func clip(s string) string {
	if len(s) > 24 {
		return s[:21] + "..."
	}
	return s
}
