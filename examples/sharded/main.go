// Sharded PIR: horizontal partitioning across server cohorts.
//
// IM-PIR's all-for-one principle makes every query a linear scan of the
// whole replica, so a single server pair caps out at one machine's
// memory bandwidth. This example scales *across* boxes instead: the
// database is carved into contiguous row-range shards, each served by
// its own cohort of two non-colluding replicas, and the ClusterClient
// queries EVERY cohort on every retrieval — the real sub-query on the
// owning shard, a well-formed dummy elsewhere — so each cohort sees a
// valid PIR query regardless of the target and learns nothing about
// which shard mattered. Per-shard scan work falls by the shard factor;
// retrieval latency is the slowest shard, not the sum.
//
// The example runs a 2-shard × 2-replica deployment over loopback TCP,
// retrieves records from both shards, issues a batch that straddles the
// shard boundary, then routes a live update to the single cohort that
// owns the dirty row (riding the server-side epoch quiescing) and reads
// it back. The manifest JSON printed at the end is exactly what
// impir-server -manifest / impir-client -manifest consume.
//
//	go run ./examples/sharded
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"

	"github.com/impir/impir"
)

const (
	numRecords = 4096
	dbSeed     = 21
	shards     = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	db, err := impir.GenerateHashDB(numRecords, dbSeed)
	if err != nil {
		return err
	}

	// Carve the database into contiguous row-range shards and serve each
	// shard from its own two-replica cohort.
	parts, err := impir.SplitDB(db, shards)
	if err != nil {
		return err
	}
	cohorts := make([][]string, shards)
	for s, part := range parts {
		cohorts[s] = make([]string, 2)
		for r := 0; r < 2; r++ {
			// AllowWireUpdates lets this demo route updates from the
			// ClusterClient; real deployments restrict the update path
			// to the database owner (see ServerConfig.AllowWireUpdates).
			srv, err := impir.NewServer(impir.ServerConfig{Engine: impir.EngineCPU, AllowWireUpdates: true})
			if err != nil {
				return err
			}
			defer srv.Close()
			if err := srv.Load(part.Clone()); err != nil {
				return err
			}
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			if err := srv.Serve(lis, uint8(r)); err != nil {
				return err
			}
			cohorts[s][r] = srv.Addr().String()
		}
		fmt.Printf("shard %d: %d records on cohort %v\n", s, part.NumRecords(), cohorts[s])
	}

	m, err := impir.UniformManifest(uint64(db.NumRecords()), db.RecordSize(), cohorts)
	if err != nil {
		return err
	}
	// Lift the shard manifest into the unified deployment manifest and
	// open the whole cluster as one logical Store.
	store, err := impir.Open(ctx, impir.DeploymentFromManifest(m))
	if err != nil {
		return err
	}
	defer store.Close()
	cc := store.(*impir.ClusterClient)
	fmt.Printf("cluster: %d shards, %d records × %d bytes\n\n", cc.Shards(), cc.NumRecords(), cc.RecordSize())

	// Retrieve one record from each shard: every cohort receives a
	// sub-query both times, so neither learns which retrieval it served.
	for _, idx := range []uint64{100, 3000} {
		rec, err := cc.Retrieve(ctx, idx)
		if err != nil {
			return err
		}
		if !bytes.Equal(rec, db.Record(int(idx))) {
			return fmt.Errorf("record %d mismatch", idx)
		}
		fmt.Printf("record[%d] = %x… ✓\n", idx, rec[:8])
	}

	// A batch straddling the shard boundary: both cohorts see a batch of
	// identical shape.
	straddle := []uint64{2046, 2047, 2048, 2049}
	recs, err := cc.RetrieveBatch(ctx, straddle)
	if err != nil {
		return err
	}
	for i, idx := range straddle {
		if !bytes.Equal(recs[i], db.Record(int(idx))) {
			return fmt.Errorf("batch record %d mismatch", idx)
		}
	}
	fmt.Printf("batch %v straddling the shard boundary ✓\n", straddle)

	// Live update, routed: only record 3000's owning cohort is
	// contacted; the update applies under epoch quiescing and is visible
	// to the next retrieval.
	fresh := bytes.Repeat([]byte{0x5A}, db.RecordSize())
	if err := cc.Update(ctx, map[uint64][]byte{3000: fresh}); err != nil {
		return err
	}
	rec, err := cc.Retrieve(ctx, 3000)
	if err != nil {
		return err
	}
	if !bytes.Equal(rec, fresh) {
		return fmt.Errorf("update not visible")
	}
	fmt.Printf("update routed to shard 1's cohort only, visible on re-read ✓\n\n")

	fmt.Printf("per-shard stats: %v\n\n", cc.Stats())

	deploymentJSON, err := impir.DeploymentFromManifest(m).JSON()
	if err != nil {
		return err
	}
	fmt.Printf("deployment.json (for impir-server/impir-client -deployment):\n%s\n", deploymentJSON)
	return nil
}
