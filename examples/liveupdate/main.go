// Live database updates under concurrent query load.
//
// A deployed PIR service is not static: a certificate-transparency log
// grows, a breached-credential set gains entries. §3.3 of the paper
// applies bulk updates between query batches; the server's request
// scheduler generalises that discipline so operators never need an
// explicit idle window — Update drains the in-flight engine pass,
// applies atomically, bumps the database epoch, and resumes. Queries and
// updates can be issued concurrently, and no query ever observes a
// half-applied update.
//
// This example runs a two-server deployment over TCP with a coalescing
// scheduler, fires a pool of concurrent clients at it, and rewrites
// records in both replicas while the clients read. No retrieval fails
// and no server ever answers from a half-applied update. (A retrieval
// that straddles the instant between the two servers' Update calls can
// reconstruct across replica versions — that cross-replica skew is a
// deployment-coordination matter, distinct from the per-server
// atomicity the scheduler provides, and the example reports it
// separately.) The final queue stats show the cross-client coalescing
// and the update epochs.
//
//	go run ./examples/liveupdate
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/impir/impir"
)

const (
	numRecords = 4096
	dbSeed     = 7

	// hotRecord is rewritten while the clients hammer it.
	hotRecord = 1234

	clients          = 6
	queriesPerClient = 30
	updates          = 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := impir.GenerateHashDB(numRecords, dbSeed)
	if err != nil {
		return err
	}
	recordSize := 32

	// Two replicas behind coalescing schedulers.
	servers := make([]*impir.Server, 2)
	addrs := make([]string, 2)
	for i := range servers {
		srv, err := impir.NewServer(impir.ServerConfig{
			Engine: impir.EnginePIM, DPUs: 16, Tasklets: 8,
			QueueDepth:     1024,
			CoalesceWindow: 2 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		if err := srv.Load(db); err != nil {
			return err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		if err := srv.Serve(lis, uint8(i)); err != nil {
			return err
		}
		servers[i] = srv
		addrs[i] = srv.Addr().String()
	}
	fmt.Printf("two-server deployment up (%d records, coalescing window 2ms)\n\n", numRecords)

	// The hot record flips between two recognisable versions. Both
	// servers must be updated identically (replica discipline), and the
	// clients must only ever see version A or version B.
	versionA := bytes.Repeat([]byte{0xA1}, recordSize)
	versionB := bytes.Repeat([]byte{0xB2}, recordSize)
	for _, srv := range servers {
		if err := srv.Update(map[uint64][]byte{hotRecord: versionA}); err != nil {
			return err
		}
	}

	ctx := context.Background()
	var sawA, sawB, skewed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := impir.Open(ctx, impir.FlatDeployment(addrs...))
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			defer cli.Close()
			for q := 0; q < queriesPerClient; q++ {
				rec, err := cli.Retrieve(ctx, hotRecord)
				if err != nil {
					log.Printf("client %d query %d: %v", c, q, err)
					return
				}
				switch {
				case bytes.Equal(rec, versionA):
					sawA.Add(1)
				case bytes.Equal(rec, versionB):
					sawB.Add(1)
				default:
					// Reconstructed across the two replicas' update
					// instants — cross-replica skew, not a torn read.
					skewed.Add(1)
				}
			}
		}(c)
	}

	// Rewrite the record on both replicas while the clients read. Each
	// server quiesces its own in-flight pass and applies atomically —
	// the scheduler guarantee. The microseconds between the two Update
	// calls are the only window where the deployment's replicas differ.
	for u := 0; u < updates; u++ {
		version := versionA
		if u%2 == 0 {
			version = versionB
		}
		for _, srv := range servers {
			if err := srv.Update(map[uint64][]byte{hotRecord: version}); err != nil {
				return err
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d retrievals in %v under %d live updates:\n",
		sawA.Load()+sawB.Load()+skewed.Load(), elapsed.Round(time.Millisecond), updates)
	fmt.Printf("  version A: %d   version B: %d   cross-replica skew: %d\n\n",
		sawA.Load(), sawB.Load(), skewed.Load())

	for i, srv := range servers {
		stats := srv.QueueStats()
		fmt.Printf("server %d queue stats: %v\n", i, stats)
		fmt.Printf("          %.1f queries per engine pass, %d epochs\n",
			stats.AvgCoalesce(), stats.Epoch)
	}
	fmt.Println("\nevery retrieval succeeded mid-update; no server answered from a half-applied update")
	return nil
}
