// Certificate Transparency auditing over a real TCP deployment.
//
// A CT auditor wants to check that a certificate it was served appears in
// a public CT log — but asking the log operator for "the leaf hash at
// index i" reveals which site the auditor visited. With two-server PIR
// the auditor retrieves the leaf hash without either log mirror learning
// which certificate is being audited (the §5.2 use case, cf. [51, 58]).
//
// This example starts two PIR servers on loopback TCP, each independently
// synthesising the same CT log, then audits two certificates: one honest
// (hash matches) and one tampered (hash mismatch → alarm).
//
//	go run ./examples/certtransparency
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"

	"github.com/impir/impir"
)

const (
	logSize = 8192
	logSeed = 2025
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Log mirrors (in reality: two independent operators) ---
	addr0, stop0, err := startMirror(0)
	if err != nil {
		return err
	}
	defer stop0()
	addr1, stop1, err := startMirror(1)
	if err != nil {
		return err
	}
	defer stop1()

	// --- Auditor ---
	// The auditor knows the log's contents schema: it has the certificate
	// (and therefore can recompute its leaf hash) and the log index from
	// the SCT (signed certificate timestamp).
	_, entries, err := impir.GenerateCTLog(logSize, logSeed)
	if err != nil {
		return err
	}

	ctx := context.Background()
	// One deployment manifest names both non-colluding mirrors; Open
	// returns the unified Store surface over it.
	cli, err := impir.Open(ctx, impir.FlatDeployment(addr0, addr1))
	if err != nil {
		return err
	}
	defer cli.Close()
	fmt.Printf("connected to both log mirrors: %d entries, replicas verified\n\n",
		cli.NumRecords())

	// Audit 1: an honest certificate.
	const honestIdx = 4242
	cert := entries[honestIdx]
	fmt.Printf("auditing %q (serial %d) at log index %d…\n", cert.Domain, cert.SerialNumber, honestIdx)
	leaf, err := cli.Retrieve(ctx, uint64(honestIdx))
	if err != nil {
		return err
	}
	want := cert.LeafHash()
	if bytes.Equal(leaf, want[:]) {
		fmt.Printf("  leaf hash %x… matches — certificate is logged ✓\n\n", leaf[:8])
	} else {
		return fmt.Errorf("honest certificate failed its audit")
	}

	// Audit 2: a tampered certificate (wrong issuer claimed).
	tampered := entries[100]
	tampered.Issuer = "CN=Totally Legit CA"
	fmt.Printf("auditing tampered record for %q…\n", tampered.Domain)
	leaf, err = cli.Retrieve(ctx, 100)
	if err != nil {
		return err
	}
	forged := tampered.LeafHash()
	if !bytes.Equal(leaf, forged[:]) {
		fmt.Printf("  leaf hash mismatch — tampering detected ✓\n\n")
	} else {
		return fmt.Errorf("tampered certificate passed its audit")
	}

	fmt.Println("neither mirror learned which certificates were audited")
	return nil
}

// startMirror launches one PIR server with its replica of the CT log.
func startMirror(party uint8) (addr string, stop func(), err error) {
	db, _, err := impir.GenerateCTLog(logSize, logSeed)
	if err != nil {
		return "", nil, err
	}
	srv, err := impir.NewServer(impir.ServerConfig{
		Engine:   impir.EnginePIM,
		DPUs:     16,
		Tasklets: 8,
	})
	if err != nil {
		return "", nil, err
	}
	if err := srv.Load(db); err != nil {
		srv.Close()
		return "", nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	if err := srv.Serve(lis, party); err != nil {
		srv.Close()
		return "", nil, err
	}
	fmt.Printf("log mirror %d (%s engine) on %s\n", party, srv.EngineName(), srv.Addr())
	return srv.Addr().String(), func() { srv.Close() }, nil
}
