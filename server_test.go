package impir

import (
	"testing"

	"github.com/impir/impir/internal/pim"
)

func TestShrinkPIM(t *testing.T) {
	base := pim.DefaultConfig() // 32 ranks × 64 DPUs

	small := shrinkPIM(base, 8)
	if small.NumDPUs() < 8 {
		t.Fatalf("shrinkPIM(8) yields %d DPUs", small.NumDPUs())
	}
	if small.Ranks != 1 || small.DPUsPerRank != 8 {
		t.Fatalf("shrinkPIM(8) = %d ranks × %d", small.Ranks, small.DPUsPerRank)
	}

	mid := shrinkPIM(base, 130)
	if mid.NumDPUs() < 130 {
		t.Fatalf("shrinkPIM(130) yields %d DPUs", mid.NumDPUs())
	}
	if mid.DPUsPerRank != 64 || mid.Ranks != 3 {
		t.Fatalf("shrinkPIM(130) = %d ranks × %d", mid.Ranks, mid.DPUsPerRank)
	}
	if err := mid.Validate(); err != nil {
		t.Fatalf("shrunk config invalid: %v", err)
	}
}

func TestServerConfigKnobs(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Engine:      EnginePIM,
		DPUs:        32,
		Clusters:    2,
		Tasklets:    12,
		EvalWorkers: 4,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	if srv.EngineName() != "IM-PIR" {
		t.Errorf("EngineName = %q", srv.EngineName())
	}
	if srv.Database() != nil {
		t.Error("Database non-nil before Load")
	}
	if srv.Addr() != nil {
		t.Error("Addr non-nil before Serve")
	}

	// Invalid knob combinations must surface.
	if _, err := NewServer(ServerConfig{Engine: EnginePIM, DPUs: 10, Clusters: 3}); err == nil {
		t.Error("non-divisible clusters accepted")
	}
	if _, err := NewServer(ServerConfig{Engine: EnginePIM, Tasklets: 99}); err == nil {
		t.Error("tasklet count beyond hardware accepted")
	}
	if _, err := NewServer(ServerConfig{Engine: EngineKind(42)}); err == nil {
		t.Error("unknown engine kind accepted")
	}
	if _, err := NewServer(ServerConfig{Engine: EngineCPU, Threads: -2}); err == nil {
		t.Error("negative CPU threads accepted")
	}
}

func TestZeroConfigIsPaperSetup(t *testing.T) {
	srv, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatalf("zero-config NewServer: %v", err)
	}
	defer srv.Close()
	if srv.EngineName() != "IM-PIR" {
		t.Fatalf("zero config engine = %q, want IM-PIR", srv.EngineName())
	}
}
