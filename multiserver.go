package impir

import (
	"errors"
	"fmt"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/naivepir"
	"github.com/impir/impir/internal/transport"
)

// Share is one server's selector share under the naive n-server encoding
// of §2.3 / Figure 2 of the paper: an explicit N-bit vector, one bit per
// database record. The XOR of a query's shares is the one-hot indicator
// of the queried index; any proper subset is uniformly random.
//
// Compared with DPF keys (O(λ·log N) bytes), shares cost O(N) bits per
// server — but they work with any number of servers ≥ 2, whereas the DPF
// encoding in this module is two-party. Use GenerateShares + AnswerShare
// (or MultiSession over the network) for deployments with more than two
// servers; use GenerateKeys for the bandwidth-efficient two-server path.
type Share = bitvec.Vector

// GenerateShares encodes a query for `servers` non-colluding servers
// using the naive §2.3 scheme. Send shares[s] to server s.
func GenerateShares(numRecords int, index uint64, servers int) ([]*Share, error) {
	// The engines pad databases to powers of two, so shares must cover
	// the padded index space to match the server-side record count.
	domain, err := DomainFor(numRecords)
	if err != nil {
		return nil, err
	}
	if index >= uint64(numRecords) {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, numRecords)
	}
	q, err := naivepir.Gen(nil, 1<<uint(domain), index, servers)
	if err != nil {
		return nil, err
	}
	return q.Shares, nil
}

// AnswerShare processes a raw selector-share query on this server — the
// n-server generalisation. The share must cover the server's padded
// record count (as produced by GenerateShares).
func (s *Server) AnswerShare(share *Share) ([]byte, Breakdown, error) {
	return s.eng.QueryShare(share)
}

// MultiSession is a client connection to an n-server deployment (n ≥ 2)
// using the naive share encoding. All servers must hold byte-identical
// replicas; privacy holds as long as at least one server does not collude
// with the others.
type MultiSession struct {
	conns      []*transport.Conn
	numRecords uint64
	recordSize int
}

// ConnectMulti dials every server and cross-checks their replicas.
func ConnectMulti(addrs ...string) (*MultiSession, error) {
	if len(addrs) < naivepir.MinServers {
		return nil, fmt.Errorf("impir: need ≥ %d servers, got %d", naivepir.MinServers, len(addrs))
	}
	s := &MultiSession{}
	for i, addr := range addrs {
		c, err := transport.Dial(addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("impir: server %d: %w", i, err)
		}
		s.conns = append(s.conns, c)
	}
	first := s.conns[0].Info()
	if first.NumRecords == 0 {
		s.Close()
		return nil, errors.New("impir: servers report an empty database")
	}
	for i, c := range s.conns[1:] {
		info := c.Info()
		if info.Digest != first.Digest || info.NumRecords != first.NumRecords ||
			info.RecordSize != first.RecordSize {
			s.Close()
			return nil, fmt.Errorf("impir: server %d holds a different replica", i+1)
		}
	}
	s.numRecords = first.NumRecords
	s.recordSize = int(first.RecordSize)
	return s, nil
}

// Servers returns the number of connected servers.
func (s *MultiSession) Servers() int { return len(s.conns) }

// NumRecords returns the (padded) record count of the deployment.
func (s *MultiSession) NumRecords() uint64 { return s.numRecords }

// RecordSize returns the record size in bytes.
func (s *MultiSession) RecordSize() int { return s.recordSize }

// Retrieve privately fetches record `index`: one share per server, XOR of
// all subresults. Privacy holds unless every server colludes.
func (s *MultiSession) Retrieve(index uint64) ([]byte, error) {
	if index >= s.numRecords {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, s.numRecords)
	}
	q, err := naivepir.Gen(nil, int(s.numRecords), index, len(s.conns))
	if err != nil {
		return nil, err
	}
	subresults := make([][]byte, len(s.conns))
	for i, c := range s.conns {
		sub, err := c.QueryShare(q.Shares[i])
		if err != nil {
			return nil, fmt.Errorf("impir: server %d: %w", i, err)
		}
		subresults[i] = sub
	}
	return Reconstruct(subresults...)
}

// Close closes every server connection.
func (s *MultiSession) Close() error {
	var err error
	for _, c := range s.conns {
		if c != nil {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}
