package impir

import (
	"context"
	"fmt"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/naivepir"
)

// Share is one server's selector share under the naive n-server encoding
// of §2.3 / Figure 2 of the paper: an explicit N-bit vector, one bit per
// database record. The XOR of a query's shares is the one-hot indicator
// of the queried index; any proper subset is uniformly random.
//
// Compared with DPF keys (O(λ·log N) bytes), shares cost O(N) bits per
// server — but they work with any number of servers ≥ 2, whereas the DPF
// encoding in this module is two-party. Use GenerateShares + AnswerShare
// (or a Client with EncodingShares over the network) for deployments
// with more than two servers; use GenerateKeys for the
// bandwidth-efficient two-server path.
type Share = bitvec.Vector

// GenerateShares encodes a query for `servers` non-colluding servers
// using the naive §2.3 scheme. Send shares[s] to server s.
func GenerateShares(numRecords int, index uint64, servers int) ([]*Share, error) {
	// The engines pad databases to powers of two, so shares must cover
	// the padded index space to match the server-side record count.
	domain, err := DomainFor(numRecords)
	if err != nil {
		return nil, err
	}
	if index >= uint64(numRecords) {
		return nil, fmt.Errorf("impir: index %d outside database of %d records", index, numRecords)
	}
	q, err := naivepir.Gen(nil, 1<<uint(domain), index, servers)
	if err != nil {
		return nil, err
	}
	return q.Shares, nil
}

// AnswerShare processes a raw selector-share query on this server — the
// n-server generalisation. The share must cover the server's padded
// record count (as produced by GenerateShares).
func (s *Server) AnswerShare(ctx context.Context, share *Share) ([]byte, Breakdown, error) {
	if err := ctx.Err(); err != nil {
		return nil, Breakdown{}, err
	}
	return s.eng.QueryShare(share)
}

// MultiSession is a client connection to an n-server deployment (n ≥ 2)
// using the naive share encoding.
//
// Deprecated: MultiSession is a thin wrapper over Client, retained for
// one release. Use Dial with WithEncoding(EncodingShares) instead — it
// performs the same replica validation, adds context and batch support,
// and queries all servers concurrently instead of sequentially.
//
// One behavioural difference carries over from Client: a failed
// retrieval cancels the concurrent fan-out, which can abandon other
// servers' exchanges mid-flight and poison their connections. After any
// Retrieve/RetrieveBatch error, discard the MultiSession and reconnect
// (the old sequential MultiSession could keep going after a per-server
// error).
type MultiSession struct {
	c *Client
}

// ConnectMulti dials every server and cross-checks their replicas.
//
// Deprecated: use Dial with WithEncoding(EncodingShares), which takes a
// context.
func ConnectMulti(addrs ...string) (*MultiSession, error) {
	c, err := Dial(context.Background(), addrs, WithEncoding(EncodingShares))
	if err != nil {
		return nil, err
	}
	return &MultiSession{c: c}, nil
}

// Client returns the underlying Client, easing migration off the
// deprecated wrapper.
func (s *MultiSession) Client() *Client { return s.c }

// Servers returns the number of connected servers.
func (s *MultiSession) Servers() int { return s.c.Servers() }

// NumRecords returns the (padded) record count of the deployment.
func (s *MultiSession) NumRecords() uint64 { return s.c.NumRecords() }

// RecordSize returns the record size in bytes.
func (s *MultiSession) RecordSize() int { return s.c.RecordSize() }

// Retrieve privately fetches record `index`: one share per server, XOR of
// all subresults. Privacy holds unless every server colludes.
//
// Deprecated: use Client.Retrieve, which takes a context.
func (s *MultiSession) Retrieve(index uint64) ([]byte, error) {
	return s.c.Retrieve(context.Background(), index)
}

// RetrieveBatch privately fetches several records in one round trip per
// server under the share encoding.
//
// Deprecated: use Client.RetrieveBatch, which takes a context.
func (s *MultiSession) RetrieveBatch(indices []uint64) ([][]byte, error) {
	return s.c.RetrieveBatch(context.Background(), indices)
}

// Close closes every server connection.
func (s *MultiSession) Close() error { return s.c.Close() }
