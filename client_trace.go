package impir

import (
	"context"
	"net/http"
	"time"

	"github.com/impir/impir/internal/obs"
)

// Tracer is the client-side tracing bundle for impir.Open: an
// interceptor pair that opens one root span per logical operation
// (Retrieve, RetrieveBatch) and collects the finished span trees in a
// ring buffer. Below the root, the fan-out layers attach children as
// the call spreads out — one per shard sub-query, one per party, one
// per replica attempt — so a single slow retrieval decomposes into
// which shard, party, replica, hedge attempt, queue wait, and engine
// phase cost the time.
//
// Sampling is decided at the head by SampleRate; an unsampled
// operation carries a nil span through the entire call path at zero
// allocation. With SlowThreshold set, every operation is traced and
// the ring additionally keeps unsampled ones that ran at least that
// long — the client-side mirror of the server's slow-query tracing.
//
//	tr := impir.NewTracer(impir.TracerConfig{SampleRate: 0.01})
//	store, _ := impir.Open(ctx, d, tr.Option())
//	http.Handle("/debug/traces", tr)
type Tracer struct {
	sampler obs.Sampler
	slow    time.Duration
	ring    *obs.TraceRing
}

// TraceSnapshot is one immutable span tree from the tracer's ring: the
// root carries the operation, children carry the fan-out (shard →
// party → attempt). See the README's span field glossary.
type TraceSnapshot = obs.SpanSnapshot

// TracerConfig configures a client Tracer.
type TracerConfig struct {
	// SampleRate is the head-sampling fraction: 0 samples nothing,
	// 1 samples everything.
	SampleRate float64
	// SlowThreshold, when positive, traces EVERY operation and keeps
	// unsampled ones in the ring when they run at least this long.
	// This trades the zero-allocation unsampled path for never missing
	// a slow operation.
	SlowThreshold time.Duration
	// RingSize bounds the trace ring (0 means obs.DefaultTraceRingSize).
	RingSize int
}

// NewTracer builds a tracing bundle.
func NewTracer(cfg TracerConfig) *Tracer {
	return &Tracer{
		sampler: obs.NewSampler(cfg.SampleRate),
		slow:    cfg.SlowThreshold,
		ring:    obs.NewTraceRing(cfg.RingSize),
	}
}

// Option returns the ClientOption installing the tracer's
// interceptors; pass it to Open (or NewClient/NewClusterClient).
func (t *Tracer) Option() ClientOption {
	return func(c *clientConfig) {
		c.unary = append(c.unary, t.interceptUnary)
		c.batch = append(c.batch, t.interceptBatch)
	}
}

// begin opens the root span for one logical operation, or returns nil
// when the operation is not traced. The no-tracing check runs before
// any ID is drawn, keeping the disabled path allocation free.
func (t *Tracer) begin(ctx context.Context, op string) (*obs.Span, bool) {
	if !t.sampler.Enabled() && t.slow <= 0 {
		return nil, false
	}
	traceID := obs.NewTraceID()
	sampled := t.sampler.SampleTrace(traceID)
	if !sampled && t.slow <= 0 {
		return nil, false
	}
	span := obs.NewRootSpan(traceID, op)
	span.SetAttrBool("sampled", sampled)
	for _, a := range obs.OpAttrsFromContext(ctx) {
		span.SetAttr(a.Key, a.Value)
	}
	return span, sampled
}

// finish ends the root span and decides ring admission: sampled
// operations always, unsampled ones only over the slow threshold.
func (t *Tracer) finish(span *obs.Span, sampled bool, err error) {
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	if sampled || (t.slow > 0 && span.Duration() >= t.slow) {
		t.ring.Add(span)
	}
}

func (t *Tracer) interceptUnary(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
	span, sampled := t.begin(ctx, opRetrieve)
	if span == nil {
		return invoke(ctx, index)
	}
	rec, err := invoke(obs.ContextWithSpan(ctx, span), index)
	t.finish(span, sampled, err)
	return rec, err
}

func (t *Tracer) interceptBatch(ctx context.Context, indices []uint64, invoke BatchInvoker) ([][]byte, error) {
	span, sampled := t.begin(ctx, opRetrieveBatch)
	if span == nil {
		return invoke(ctx, indices)
	}
	span.SetAttrInt("batch_size", int64(len(indices)))
	recs, err := invoke(obs.ContextWithSpan(ctx, span), indices)
	t.finish(span, sampled, err)
	return recs, err
}

// RecentTraces snapshots the ring's span trees, newest first, keeping
// those at least min long (0 keeps all).
func (t *Tracer) RecentTraces(min time.Duration) []TraceSnapshot {
	spans := t.ring.Snapshot(min)
	out := make([]TraceSnapshot, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.Snapshot())
	}
	return out
}

// ServeHTTP serves the ring as JSON — the same format as a server's
// /debug/traces endpoint, filterable with ?min_ms=N — so an
// application can mount the client's traces on its own mux.
func (t *Tracer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	t.ring.ServeHTTP(w, req)
}
