package impir

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/impir/impir/internal/obs"
)

// ClientObs is the client-side observability bundle for impir.Open: an
// interceptor pair that records per-call latency histograms and
// outcome counters for every Retrieve/RetrieveBatch, plus mirrors of
// the attached stores' retry/hedge/hedge-win counters — scrapeable as a
// Prometheus text exposition or snapshotable in-process.
//
// Everything recorded here lives strictly on the client: the
// interceptor chain runs above the PIR encoding, so these metrics see
// record indices' timing (never their values) and nothing here is ever
// sent to a server.
//
//	co := impir.NewClientObs()
//	store, _ := impir.Open(ctx, d, co.Option())
//	co.Attach(store) // mirror the store's retry/hedge counters
//	http.Handle("/metrics", co)
type ClientObs struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // op, outcome
	latency  *obs.HistogramVec // op

	retries      *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	codedBatches *obs.Counter
	sideInfoHits *obs.Counter
	fallbacks    *obs.Counter

	mu     sync.Mutex
	stores []Store
}

// Client-side operation and outcome labels.
const (
	opRetrieve      = "retrieve"
	opRetrieveBatch = "retrieve_batch"

	outcomeOK    = "ok"
	outcomeBusy  = "busy"
	outcomeError = "error"
)

// NewClientObs builds an empty client observability bundle.
func NewClientObs() *ClientObs {
	reg := obs.NewRegistry()
	o := &ClientObs{
		reg: reg,
		requests: reg.NewCounter("impir_client_requests_total",
			"Store operations by type and outcome.", "op", "outcome"),
		latency: reg.NewHistogram("impir_client_latency_seconds",
			"Whole-operation latency (fan-out, hedges and retries included), by operation.",
			nil, "op"),
		retries: reg.NewCounter("impir_client_retries_total",
			"Extra whole-operation attempts spent from retry budgets (mirrored from store stats at scrape time).").With(),
		hedges: reg.NewCounter("impir_client_hedges_total",
			"Hedge attempts launched beyond a party's primary replica (mirrored at scrape time).").With(),
		hedgeWins: reg.NewCounter("impir_client_hedge_wins_total",
			"Party sub-requests won by a non-primary replica (mirrored at scrape time).").With(),
		codedBatches: reg.NewCounter("impir_client_coded_batches_total",
			"Batches served through the batch-code planner (mirrored at scrape time).").With(),
		sideInfoHits: reg.NewCounter("impir_client_side_info_hits_total",
			"Records served from the side-information cache and spent as dummies (mirrored at scrape time).").With(),
		fallbacks: reg.NewCounter("impir_client_code_fallbacks_total",
			"Coded batches that fell back to the uncoded path (mirrored at scrape time).").With(),
	}
	reg.OnScrape(o.mirrorStores)
	return o
}

// Option returns the ClientOption installing the bundle's interceptors;
// pass it to Open (or NewClient/NewClusterClient).
func (o *ClientObs) Option() ClientOption {
	return func(c *clientConfig) {
		c.unary = append(c.unary, o.interceptUnary)
		c.batch = append(c.batch, o.interceptBatch)
	}
}

// Attach registers a store whose Stats() retry/hedge counters the
// bundle mirrors into the exposition at scrape time. Attach each store
// the bundle's interceptors are installed on; attaching is separate
// from Option because the store only exists after Open returns.
func (o *ClientObs) Attach(store Store) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stores = append(o.stores, store)
}

func (o *ClientObs) mirrorStores() {
	o.mu.Lock()
	stores := append([]Store{}, o.stores...)
	o.mu.Unlock()
	var retries, hedges, hedgeWins, coded, sideInfo, fallbacks uint64
	for _, st := range stores {
		s := st.Stats()
		retries += s.Retries
		hedges += s.Hedges
		hedgeWins += s.HedgeWins
		coded += s.CodedBatches
		sideInfo += s.SideInfoHits
		fallbacks += s.CodeFallbacks
	}
	o.retries.Set(retries)
	o.hedges.Set(hedges)
	o.hedgeWins.Set(hedgeWins)
	o.codedBatches.Set(coded)
	o.sideInfoHits.Set(sideInfo)
	o.fallbacks.Set(fallbacks)
}

func (o *ClientObs) record(op string, start time.Time, err error) {
	o.latency.With(op).Observe(time.Since(start))
	switch {
	case err == nil:
		o.requests.With(op, outcomeOK).Inc()
	case errors.Is(err, ErrServerBusy):
		o.requests.With(op, outcomeBusy).Inc()
	default:
		o.requests.With(op, outcomeError).Inc()
	}
}

func (o *ClientObs) interceptUnary(ctx context.Context, index uint64, invoke UnaryInvoker) ([]byte, error) {
	start := time.Now()
	rec, err := invoke(ctx, index)
	o.record(opRetrieve, start, err)
	return rec, err
}

func (o *ClientObs) interceptBatch(ctx context.Context, indices []uint64, invoke BatchInvoker) ([][]byte, error) {
	start := time.Now()
	recs, err := invoke(ctx, indices)
	o.record(opRetrieveBatch, start, err)
	return recs, err
}

// WriteMetrics renders the bundle's families in the Prometheus text
// exposition format.
func (o *ClientObs) WriteMetrics(w io.Writer) error { return o.reg.WriteText(w) }

// ServeHTTP makes the bundle an http.Handler serving its exposition, so
// an application can mount it on its own mux:
//
//	http.Handle("/metrics", co)
func (o *ClientObs) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	o.WriteMetrics(w)
}

// ClientCallStats summarises one operation type's recorded calls.
type ClientCallStats struct {
	Calls  uint64 // completed operations (all outcomes)
	Errors uint64 // failed operations, busy rejections included
	Busy   uint64 // failures that were server busy rejections
	P50    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// ClientObsSnapshot is an in-process view of the bundle's counters for
// applications that want numbers rather than an exposition.
type ClientObsSnapshot struct {
	Retrieve      ClientCallStats
	RetrieveBatch ClientCallStats
	// Retries, Hedges and HedgeWins aggregate the attached stores'
	// client-side counters, as do the coded-batch and side-information
	// counters (non-zero only for coded deployments).
	Retries      uint64
	Hedges       uint64
	HedgeWins    uint64
	CodedBatches uint64
	SideInfoHits uint64
	Fallbacks    uint64
}

// Snapshot returns the bundle's current counters and latency quantiles.
func (o *ClientObs) Snapshot() ClientObsSnapshot {
	o.mirrorStores()
	return ClientObsSnapshot{
		Retrieve:      o.callStats(opRetrieve),
		RetrieveBatch: o.callStats(opRetrieveBatch),
		Retries:       o.retries.Value(),
		Hedges:        o.hedges.Value(),
		HedgeWins:     o.hedgeWins.Value(),
		CodedBatches:  o.codedBatches.Value(),
		SideInfoHits:  o.sideInfoHits.Value(),
		Fallbacks:     o.fallbacks.Value(),
	}
}

func (o *ClientObs) callStats(op string) ClientCallStats {
	s := o.latency.With(op).Snapshot()
	busy := o.requests.With(op, outcomeBusy).Value()
	return ClientCallStats{
		Calls:  s.Count,
		Errors: o.requests.With(op, outcomeError).Value() + busy,
		Busy:   busy,
		P50:    s.Quantile(0.50),
		P99:    s.Quantile(0.99),
		Max:    s.Max,
	}
}
