package impir

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"
)

// slowProxy forwards TCP to backend, delaying every backend→client
// chunk by delay — a network-slow replica in front of a perfectly
// healthy server, so the server's own traces stay honest.
func slowProxy(t *testing.T, backend string, delay time.Duration) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			b, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go func() {
				defer c.Close()
				defer b.Close()
				io.Copy(b, c)
			}()
			go func() {
				defer c.Close()
				defer b.Close()
				buf := make([]byte, 32<<10)
				for {
					n, rerr := b.Read(buf)
					if n > 0 {
						time.Sleep(delay)
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if rerr != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String()
}

// startTracedDeployment builds the acceptance topology over real TCP:
// 2 shards × 2 parties; shard 0's party 0 runs two replicas, the
// primary slowed by slowDelay through a TCP proxy (a hedging target).
// Returns the deployment and every server handle for ring inspection.
func startTracedDeployment(t *testing.T, db *DB, slowDelay time.Duration) (Deployment, []*Server) {
	t.Helper()
	parts, err := SplitDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	var servers []*Server
	serve := func(part *DB, party uint8) string {
		srv, err := NewServer(ServerConfig{Engine: EngineCPU, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if err := srv.Load(part.Clone()); err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(lis, party); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		return srv.Addr().String()
	}

	var shards []DeploymentShard
	first := uint64(0)
	for s, part := range parts {
		var parties []Party
		for party := 0; party < 2; party++ {
			var addrs []string
			if s == 0 && party == 0 {
				// Slow primary FIRST so a cold client picks it; the
				// fast second replica wins the hedge.
				addrs = []string{slowProxy(t, serve(part, 0), slowDelay), serve(part, 0)}
			} else {
				addrs = []string{serve(part, uint8(party))}
			}
			parties = append(parties, Party{Replicas: addrs})
		}
		shards = append(shards, DeploymentShard{
			FirstRecord: first,
			NumRecords:  uint64(part.NumRecords()),
			Parties:     parties,
		})
		first += uint64(part.NumRecords())
	}
	return Deployment{RecordSize: db.RecordSize(), Shards: shards}, servers
}

// collectSpans flattens a span tree, depth first.
func collectSpans(sn TraceSnapshot) []TraceSnapshot {
	out := []TraceSnapshot{sn}
	for _, c := range sn.Children {
		out = append(out, collectSpans(c)...)
	}
	return out
}

// TestDistributedTracingE2E is the acceptance fixture for end-to-end
// tracing: a retrieval against a sharded, replicated, hedged deployment
// over real TCP yields one client span tree whose per-attempt children
// link — by party-local span ID and nothing else — to traces in the
// individual servers' ring buffers, with the hedge loser's cancellation
// and the servers' queue/engine stage times visible. No two servers
// ever receive the same span ID.
func TestDistributedTracingE2E(t *testing.T) {
	const (
		slowDelay  = 300 * time.Millisecond
		hedgeFloor = 15 * time.Millisecond
	)
	db, err := GenerateHashDB(256, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d, servers := startTracedDeployment(t, db, slowDelay)

	tracer := NewTracer(TracerConfig{SampleRate: 1})
	store, err := Open(ctx, d, tracer.Option(),
		WithDefaultCallOptions(WithHedging(true), WithHedgeDelay(hedgeFloor)))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	const idx = 17 // shard 0: exercises the hedged party
	rec, err := store.Retrieve(ctx, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, db.Record(idx)) {
		t.Fatal("wrong record")
	}

	traces := tracer.RecentTraces(0)
	if len(traces) != 1 {
		t.Fatalf("tracer ring holds %d traces, want 1", len(traces))
	}
	root := traces[0]
	if root.Name != "retrieve" {
		t.Fatalf("root span = %q, want retrieve", root.Name)
	}
	if v, _ := root.Attr("sampled"); v != "true" {
		t.Fatalf("root sampled attr = %q", v)
	}

	// Tree shape: root → 2 shard spans (one dummy) → 2 party spans each
	// → attempt spans.
	var shardSpans, partySpans, attempts []TraceSnapshot
	for _, sn := range collectSpans(root) {
		switch sn.Name {
		case "shard":
			shardSpans = append(shardSpans, sn)
		case "party":
			partySpans = append(partySpans, sn)
		case "attempt":
			attempts = append(attempts, sn)
		}
	}
	if len(shardSpans) != 2 {
		t.Fatalf("%d shard spans, want 2", len(shardSpans))
	}
	dummies := 0
	for _, sn := range shardSpans {
		if v, _ := sn.Attr("dummy"); v == "true" {
			dummies++
		}
	}
	if dummies != 1 {
		t.Fatalf("%d dummy shard spans, want exactly 1 (the non-owner)", dummies)
	}
	if len(partySpans) != 4 {
		t.Fatalf("%d party spans, want 2 shards × 2 parties", len(partySpans))
	}
	// Hedging fired on the slowed party: its span records the delay and
	// the fast replica as winner.
	var hedged *TraceSnapshot
	for i := range partySpans {
		if _, ok := partySpans[i].Attr("hedge_delay"); ok {
			hedged = &partySpans[i]
		}
	}
	if hedged == nil {
		t.Fatal("no party span carries hedge_delay — hedging never engaged")
	}
	if v, _ := hedged.Attr("winner_replica"); v != "1" {
		t.Fatalf("winner_replica = %q, want the fast replica 1", v)
	}

	// Every attempt carries an independent random span ID — distinct
	// across replicas, parties, and shards.
	if len(attempts) < 5 { // 3 single-replica parties + 2 hedge attempts
		t.Fatalf("%d attempt spans, want at least 5", len(attempts))
	}
	seen := map[string]bool{}
	for _, att := range attempts {
		if att.SpanID == "" || seen[att.SpanID] {
			t.Fatalf("attempt span ID %q missing or reused", att.SpanID)
		}
		seen[att.SpanID] = true
	}

	// The hedge loser is visibly cancelled. The loser ends its span
	// asynchronously after Retrieve returns, so poll the live tree.
	deadline := time.Now().Add(10 * time.Second)
	for {
		lost := 0
		for _, sn := range collectSpans(tracer.RecentTraces(0)[0]) {
			if v, _ := sn.Attr("outcome"); sn.Name == "attempt" && v == "lost" {
				if c, _ := sn.Attr("cancelled"); c != "true" {
					t.Fatalf("lost attempt not marked cancelled: %+v", sn.Attrs)
				}
				lost++
			}
		}
		if lost == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hedge loser never recorded outcome=lost (%d)", lost)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cross-linkage: every winning attempt's span ID appears as the
	// trace_id of exactly one server's ring entry, and that server-side
	// trace exposes its queue/engine stages. The ring entry is added
	// after the response is written, so poll briefly.
	ringIDs := func() map[string]TraceSnapshot {
		out := map[string]TraceSnapshot{}
		for i, srv := range servers {
			for _, sn := range srv.RecentTraces(0) {
				if prev, dup := out[sn.SpanID]; dup {
					t.Fatalf("span ID %s reached two servers (%q and %q) — linkable by collusion",
						sn.SpanID, prev.Name, sn.Name)
				}
				_ = i
				out[sn.SpanID] = sn
			}
		}
		return out
	}
	okAttempts := map[string]bool{}
	for _, att := range attempts {
		if v, _ := att.Attr("outcome"); v == "ok" {
			okAttempts[att.SpanID] = true
		}
	}
	if len(okAttempts) < 4 {
		t.Fatalf("%d winning attempts, want at least 4 (one per party per shard)", len(okAttempts))
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		rings := ringIDs()
		missing := 0
		for id := range okAttempts {
			if _, ok := rings[id]; !ok {
				missing++
			}
		}
		if missing == 0 {
			for id := range okAttempts {
				sn := rings[id]
				stages := map[string]bool{}
				for _, c := range sn.Children {
					stages[c.Name] = true
				}
				if !stages["queue"] || !stages["engine"] {
					t.Fatalf("server trace %s lacks queue/engine stages: %+v", id, sn.Children)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d attempt span IDs never appeared in any server ring", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTracingDisabledByDefault: without a Tracer the same deployment
// serves retrievals with empty server rings — nothing is traced unless
// asked for.
func TestTracingDisabledByDefault(t *testing.T) {
	db, err := GenerateHashDB(128, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d, servers := startTracedDeployment(t, db, 0)
	store, err := Open(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Retrieve(ctx, 3); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for i, srv := range servers {
		if n := len(srv.RecentTraces(0)); n != 0 {
			t.Fatalf("server %d ringed %d traces with tracing off", i, n)
		}
	}
}
