package impir

import (
	"context"
	"errors"
	"fmt"
	"net"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/gpupir"
	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/transport"
)

// EngineKind selects a server's compute plane.
type EngineKind int

const (
	// EnginePIM is the paper's contribution: DPF evaluation on the host
	// CPU, dpXOR on UPMEM PIM DPUs. The default.
	EnginePIM EngineKind = iota + 1
	// EngineCPU is the processor-centric baseline (Google-DPF style).
	EngineCPU
	// EngineGPU is the GPU baseline of Lam et al. (modeled RTX 4090).
	EngineGPU
)

func (k EngineKind) String() string {
	switch k {
	case EnginePIM:
		return "pim"
	case EngineCPU:
		return "cpu"
	case EngineGPU:
		return "gpu"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ParseEngineKind converts a command-line engine name.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "pim", "impir", "im-pir":
		return EnginePIM, nil
	case "cpu", "cpu-pir":
		return EngineCPU, nil
	case "gpu", "gpu-pir":
		return EngineGPU, nil
	default:
		return 0, fmt.Errorf("impir: unknown engine %q (want pim, cpu, or gpu)", s)
	}
}

// ServerConfig configures one PIR server. The zero value is the paper's
// IM-PIR evaluation setup: 2048 DPUs at 350 MHz, 16 tasklets, a single
// cluster, subtree-parallel host evaluation.
type ServerConfig struct {
	// Engine selects the compute plane; zero value means EnginePIM.
	Engine EngineKind
	// DPUs is the PIM DPU count (PIM engine only; 0 = 2048). Must be a
	// multiple of Clusters.
	DPUs int
	// Clusters divides the DPUs into independent clusters, each holding
	// a full DB replica (PIM engine only; 0 = 1).
	Clusters int
	// Tasklets is the per-DPU thread count (PIM engine only; 0 = 16).
	Tasklets int
	// EvalWorkers is the host-side DPF evaluation thread count (PIM
	// engine; 0 = 8).
	EvalWorkers int
	// Threads is the CPU engine's worker count (CPU engine only; 0 = 32).
	Threads int
}

// engine abstracts the three compute planes.
type engine interface {
	Name() string
	Database() *database.DB
	LoadDatabase(*database.DB) error
	Query(*dpf.Key) ([]byte, metrics.Breakdown, error)
	QueryBatch([]*dpf.Key) ([][]byte, metrics.BatchStats, error)
	QueryShare(*bitvec.Vector) ([]byte, metrics.Breakdown, error)
	// ApplyUpdates applies a §3.3 bulk record update to the loaded
	// replica (every engine supports it, so Server.Update needs no
	// per-engine dispatch).
	ApplyUpdates(updates map[int][]byte) error
	Close() error
}

// Statically ensure the engines satisfy both the local interface and the
// transport-facing one.
var (
	_ engine           = (*impir.Engine)(nil)
	_ engine           = (*cpupir.Engine)(nil)
	_ engine           = (*gpupir.Engine)(nil)
	_ transport.Engine = (*impir.Engine)(nil)
	_ transport.Engine = (*cpupir.Engine)(nil)
	_ transport.Engine = (*gpupir.Engine)(nil)
)

// Server is one PIR server: an engine plus an optional network listener.
// In a two-server deployment, run two Servers on independent machines
// with byte-identical databases.
type Server struct {
	eng engine
	srv *transport.Server
}

// NewServer builds a server with the configured engine.
func NewServer(cfg ServerConfig) (*Server, error) {
	kind := cfg.Engine
	if kind == 0 {
		kind = EnginePIM
	}
	switch kind {
	case EnginePIM:
		ecfg := impir.DefaultConfig()
		if cfg.DPUs != 0 {
			ecfg.DPUs = cfg.DPUs
			// Size the simulated machine to the requested DPU count so
			// small test servers do not allocate 2048 DPU structs.
			if cfg.DPUs < ecfg.PIM.NumDPUs() {
				ecfg.PIM = shrinkPIM(ecfg.PIM, cfg.DPUs)
			}
		}
		if cfg.Clusters != 0 {
			ecfg.Clusters = cfg.Clusters
		}
		if cfg.Tasklets != 0 {
			ecfg.PIM.TaskletsPerDPU = cfg.Tasklets
		}
		if cfg.EvalWorkers != 0 {
			ecfg.EvalWorkers = cfg.EvalWorkers
		}
		eng, err := impir.New(ecfg)
		if err != nil {
			return nil, err
		}
		return &Server{eng: eng}, nil
	case EngineCPU:
		eng, err := cpupir.New(cpupir.Config{Threads: cfg.Threads})
		if err != nil {
			return nil, err
		}
		return &Server{eng: eng}, nil
	case EngineGPU:
		eng, err := gpupir.New(gpupir.Config{})
		if err != nil {
			return nil, err
		}
		return &Server{eng: eng}, nil
	default:
		return nil, fmt.Errorf("impir: unknown engine kind %d", kind)
	}
}

// shrinkPIM sizes a PIM topology down to about n DPUs, keeping ranks of
// the original width where possible.
func shrinkPIM(cfg pim.Config, n int) pim.Config {
	if n < cfg.DPUsPerRank {
		cfg.DPUsPerRank = n
		cfg.Ranks = 1
		return cfg
	}
	cfg.Ranks = (n + cfg.DPUsPerRank - 1) / cfg.DPUsPerRank
	return cfg
}

// Load replicates the database into the server's engine. For the PIM
// engine this preloads DPU MRAM, a one-time cost outside the query path.
func (s *Server) Load(db *DB) error {
	return s.eng.LoadDatabase(db)
}

// EngineName reports the compute plane ("IM-PIR", "CPU-PIR", "GPU-PIR").
func (s *Server) EngineName() string { return s.eng.Name() }

// Database returns the loaded (power-of-two padded) database, or nil.
func (s *Server) Database() *DB { return s.eng.Database() }

// Answer processes one query key and returns this server's subresult and
// the phase breakdown. The subresult alone reveals nothing; the client
// reconstructs the record from both servers' subresults. Cancellation is
// cooperative at query granularity: a context cancelled before the call
// aborts it, one cancelled mid-scan does not.
func (s *Server) Answer(ctx context.Context, key *Key) ([]byte, Breakdown, error) {
	if err := ctx.Err(); err != nil {
		return nil, Breakdown{}, err
	}
	return s.eng.Query(key)
}

// AnswerBatch processes a batch of keys through the engine's batch
// pipeline (§3.4) and reports throughput statistics. Cancellation is
// cooperative at batch granularity.
func (s *Server) AnswerBatch(ctx context.Context, keys []*Key) ([][]byte, BatchStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, BatchStats{}, err
	}
	return s.eng.QueryBatch(keys)
}

// Update applies a bulk record update to the loaded database replica
// during an idle window (§3.3 of the paper): updates maps record index to
// its new contents (exactly RecordSize bytes each). For the PIM engine
// this rewrites the affected DPU MRAM chunks on every cluster. Callers
// must update every server of a deployment identically, and must not run
// updates concurrently with queries on the same server.
//
// Update deliberately takes no context: an update interrupted part-way
// would leave this replica diverged from its peers, which a digest check
// only catches at the next connect. It is atomic per server — validate
// everything, then apply.
func (s *Server) Update(updates map[int][]byte) error {
	return s.eng.ApplyUpdates(updates)
}

// Serve exposes the server over a TCP listener using the IM-PIR wire
// protocol. party is this server's index (0 or 1). Serve returns
// immediately; use Close to stop.
func (s *Server) Serve(lis net.Listener, party uint8) error {
	if s.srv != nil {
		return errors.New("impir: server already serving")
	}
	srv, err := transport.NewServer(lis, s.eng, party)
	if err != nil {
		return err
	}
	s.srv = srv
	return nil
}

// Addr returns the listening address, or nil when not serving.
func (s *Server) Addr() net.Addr {
	if s.srv == nil {
		return nil
	}
	return s.srv.Addr()
}

// Close stops the network listener (if any) and releases the engine.
func (s *Server) Close() error {
	var err error
	if s.srv != nil {
		err = s.srv.Close()
		s.srv = nil
	}
	if cerr := s.eng.Close(); err == nil {
		err = cerr
	}
	return err
}
