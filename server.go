package impir

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/gpupir"
	"github.com/impir/impir/internal/impir"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
	"github.com/impir/impir/internal/pim"
	"github.com/impir/impir/internal/scheduler"
	"github.com/impir/impir/internal/transport"
)

// EngineKind selects a server's compute plane.
type EngineKind int

const (
	// EnginePIM is the paper's contribution: DPF evaluation on the host
	// CPU, dpXOR on UPMEM PIM DPUs. The default.
	EnginePIM EngineKind = iota + 1
	// EngineCPU is the processor-centric baseline (Google-DPF style).
	EngineCPU
	// EngineGPU is the GPU baseline of Lam et al. (modeled RTX 4090).
	EngineGPU
)

func (k EngineKind) String() string {
	switch k {
	case EnginePIM:
		return "pim"
	case EngineCPU:
		return "cpu"
	case EngineGPU:
		return "gpu"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ParseEngineKind converts a command-line engine name.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "pim", "impir", "im-pir":
		return EnginePIM, nil
	case "cpu", "cpu-pir":
		return EngineCPU, nil
	case "gpu", "gpu-pir":
		return EngineGPU, nil
	default:
		return 0, fmt.Errorf("impir: unknown engine %q (want pim, cpu, or gpu)", s)
	}
}

// ServerConfig configures one PIR server. The zero value is the paper's
// IM-PIR evaluation setup: 2048 DPUs at 350 MHz, 16 tasklets, a single
// cluster, subtree-parallel host evaluation, a 256-deep request queue,
// and no cross-client coalescing.
type ServerConfig struct {
	// Engine selects the compute plane; zero value means EnginePIM.
	Engine EngineKind
	// DPUs is the PIM DPU count (PIM engine only; 0 = 2048). Must be a
	// multiple of Clusters.
	DPUs int
	// Clusters divides the DPUs into independent clusters, each holding
	// a full DB replica (PIM engine only; 0 = 1).
	Clusters int
	// Tasklets is the per-DPU thread count (PIM engine only; 0 = 16).
	Tasklets int
	// EvalWorkers is the host-side DPF evaluation thread count (PIM
	// engine; 0 = 8).
	EvalWorkers int
	// Threads is the CPU engine's worker count (CPU engine only; 0 = 32).
	Threads int
	// QueueDepth bounds the request scheduler's admission queue; requests
	// beyond it are rejected with ErrServerBusy (a MsgBusy frame on the
	// wire) instead of queueing without bound. 0 means 256.
	QueueDepth int
	// CoalesceWindow is how long the scheduler holds a single query to
	// gather concurrent single queries — across client connections — into
	// one §3.4 batch pipeline pass. 0 disables coalescing.
	CoalesceWindow time.Duration
	// MaxCoalesce caps how many single queries one coalesced pass serves.
	// 0 means 64.
	MaxCoalesce int
	// AllowWireUpdates accepts MsgUpdate frames from connected network
	// clients (Client.Update / ClusterClient.Update). OFF by default:
	// the query port serves untrusted PIR clients, and an unauthorised
	// update would corrupt records or desynchronise replicas. Enable it
	// only where the update path is restricted to the database owner
	// (operator-only listener, network ACLs, or mutual TLS). Local
	// Server.Update calls are always allowed.
	AllowWireUpdates bool
	// SlowQueryThreshold logs a structured one-line trace (frame type,
	// shard, queue wait, pass width, fused?, engine phase breakdown) for
	// every wire query frame whose end-to-end dispatch takes at least
	// this long. 0 disables slow-query tracing.
	SlowQueryThreshold time.Duration
	// TraceShard labels slow-query traces with this server's shard in a
	// sharded deployment (e.g. "0"). Empty means unsharded — the label
	// is omitted from traces.
	TraceShard string
	// SlowQueryLogf directs slow-query trace lines and other transport
	// logs (default: the standard logger).
	SlowQueryLogf func(format string, args ...any)
	// TraceSampleRate head-samples wire queries that arrive without a
	// client trace context into the server's trace ring buffer: 0 keeps
	// only client-sampled and slow queries, 1 keeps everything. Sampled
	// traces are served as JSON at the admin endpoint's /debug/traces.
	TraceSampleRate float64
	// TraceRingSize bounds the trace ring buffer (0 means
	// obs.DefaultTraceRingSize, 256).
	TraceRingSize int
	// EnablePprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/ on the admin endpoint. Off by default — profiles can
	// stall a loaded process, so they are an explicit operator opt-in.
	EnablePprof bool
	// JSONLogs renders slow-query trace lines as single-line JSON
	// objects instead of logfmt.
	JSONLogs bool
}

// engine abstracts the three compute planes: the scheduler-facing query
// surface plus lifecycle.
type engine interface {
	scheduler.Engine
	LoadDatabase(*database.DB) error
	Close() error
}

// Statically ensure the engines satisfy the scheduler's interface and
// the scheduler satisfies the transport's.
var (
	_ engine               = (*impir.Engine)(nil)
	_ engine               = (*cpupir.Engine)(nil)
	_ engine               = (*gpupir.Engine)(nil)
	_ transport.Dispatcher = (*scheduler.Scheduler)(nil)
)

// ErrServerBusy reports a server whose admission queue was full: the
// request was rejected without an engine pass. Retry after a backoff.
// Returned by Answer/AnswerBatch/AnswerShare locally and by Client
// retrievals when a remote server responds with a MsgBusy frame.
var ErrServerBusy = transport.ErrServerBusy

// Server is one PIR server: an engine behind a request scheduler, plus
// an optional network listener. In a two-server deployment, run two
// Servers on independent machines with byte-identical databases.
//
// All request paths — local Answer* calls and the TCP transport — go
// through the scheduler, which bounds the admission queue, coalesces
// concurrent single queries from different clients into batch passes,
// and quiesces in-flight queries around Update.
type Server struct {
	eng              engine
	sched            *scheduler.Scheduler
	srv              *transport.Server
	allowWireUpdates bool
	slowQuery        time.Duration
	traceShard       string
	logf             func(format string, args ...any)
	sampler          obs.Sampler
	jsonLogs         bool

	// Operability plane: every server carries a metrics registry, a
	// readiness tracker, a trace ring and an admin endpoint, whether or
	// not the admin listener is ever started — local users can still
	// WriteMetrics and RecentTraces.
	reg    *obs.Registry
	sm     *obs.ServerMetrics
	ready  *obs.Readiness
	traces *obs.TraceRing
	admin  *obs.Admin
}

// NewServer builds a server with the configured engine behind a request
// scheduler.
func NewServer(cfg ServerConfig) (*Server, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	sm := obs.NewServerMetrics(reg)
	ready := obs.NewReadiness()
	ready.Register(obs.CondDBLoaded)
	ready.Register(obs.CondServing)
	ready.Set(obs.CondUpdateQuiesce, true)
	sched := scheduler.New(eng, scheduler.Config{
		QueueDepth:     cfg.QueueDepth,
		CoalesceWindow: cfg.CoalesceWindow,
		MaxCoalesce:    cfg.MaxCoalesce,
		Obs:            sm,
		Readiness:      ready,
	})
	// Mirror-at-scrape: the impir_scheduler_* counters, database gauges
	// and the ready gauge are copied from their in-process sources the
	// moment an exposition is rendered, so a scrape can never disagree
	// with a concurrent QueueStats() about what those counters were.
	reg.OnScrape(func() {
		sm.MirrorScheduler(sched.Stats())
		sm.MirrorReadiness(ready)
		if db := eng.Database(); db != nil {
			sm.SetDB(db.NumRecords(), db.RecordSize())
		}
	})
	traces := obs.NewTraceRing(cfg.TraceRingSize)
	adminOpts := []obs.AdminOption{obs.WithTraceRing(traces)}
	if cfg.EnablePprof {
		adminOpts = append(adminOpts, obs.WithPprof())
	}
	return &Server{
		eng:              eng,
		sched:            sched,
		allowWireUpdates: cfg.AllowWireUpdates,
		slowQuery:        cfg.SlowQueryThreshold,
		traceShard:       cfg.TraceShard,
		logf:             cfg.SlowQueryLogf,
		sampler:          obs.NewSampler(cfg.TraceSampleRate),
		jsonLogs:         cfg.JSONLogs,
		reg:              reg,
		sm:               sm,
		ready:            ready,
		traces:           traces,
		admin:            obs.NewAdmin(reg, ready, adminOpts...),
	}, nil
}

// newEngine builds the configured compute plane.
func newEngine(cfg ServerConfig) (engine, error) {
	kind := cfg.Engine
	if kind == 0 {
		kind = EnginePIM
	}
	switch kind {
	case EnginePIM:
		ecfg := impir.DefaultConfig()
		if cfg.DPUs != 0 {
			ecfg.DPUs = cfg.DPUs
			// Size the simulated machine to the requested DPU count so
			// small test servers do not allocate 2048 DPU structs.
			if cfg.DPUs < ecfg.PIM.NumDPUs() {
				ecfg.PIM = shrinkPIM(ecfg.PIM, cfg.DPUs)
			}
		}
		if cfg.Clusters != 0 {
			ecfg.Clusters = cfg.Clusters
		}
		if cfg.Tasklets != 0 {
			ecfg.PIM.TaskletsPerDPU = cfg.Tasklets
		}
		if cfg.EvalWorkers != 0 {
			ecfg.EvalWorkers = cfg.EvalWorkers
		}
		return impir.New(ecfg)
	case EngineCPU:
		return cpupir.New(cpupir.Config{Threads: cfg.Threads})
	case EngineGPU:
		return gpupir.New(gpupir.Config{})
	default:
		return nil, fmt.Errorf("impir: unknown engine kind %d", kind)
	}
}

// shrinkPIM sizes a PIM topology down to about n DPUs, keeping ranks of
// the original width where possible.
func shrinkPIM(cfg pim.Config, n int) pim.Config {
	if n < cfg.DPUsPerRank {
		cfg.DPUsPerRank = n
		cfg.Ranks = 1
		return cfg
	}
	cfg.Ranks = (n + cfg.DPUsPerRank - 1) / cfg.DPUsPerRank
	return cfg
}

// Load replicates the database into the server's engine. For the PIM
// engine this preloads DPU MRAM, a one-time cost outside the query path.
// A successful load satisfies the db-loaded readiness condition.
func (s *Server) Load(db *DB) error {
	if err := s.eng.LoadDatabase(db); err != nil {
		return err
	}
	s.ready.Set(obs.CondDBLoaded, true)
	return nil
}

// EngineName reports the compute plane ("IM-PIR", "CPU-PIR", "GPU-PIR").
func (s *Server) EngineName() string { return s.eng.Name() }

// Database returns the loaded (power-of-two padded) database, or nil.
func (s *Server) Database() *DB { return s.eng.Database() }

// Answer processes one query key through the scheduler and returns this
// server's subresult and the phase breakdown. The subresult alone
// reveals nothing; the client reconstructs the record from both servers'
// subresults. A context cancelled while the request waits in the
// admission queue dequeues it without an engine pass; one cancelled
// mid-pass does not abort the pass. When the server has a coalescing
// window, concurrent Answer calls may be served by one shared batch
// pipeline pass (§3.4); the returned breakdown is then the pass's
// per-query average.
func (s *Server) Answer(ctx context.Context, key *Key) ([]byte, Breakdown, error) {
	return s.sched.Query(ctx, key)
}

// AnswerBatch processes a batch of keys through the engine's batch
// pipeline (§3.4) and reports throughput statistics. Cancellation is
// cooperative at batch granularity: cancelled while queued dequeues the
// batch, cancelled mid-pass does not abort it.
func (s *Server) AnswerBatch(ctx context.Context, keys []*Key) ([][]byte, BatchStats, error) {
	return s.sched.QueryBatch(ctx, keys)
}

// Update applies a bulk record update to the loaded database replica
// (§3.3 of the paper): updates maps record index to its new contents
// (exactly RecordSize bytes each). For the PIM engine this rewrites the
// affected DPU MRAM chunks on every cluster. Callers must update every
// server of a deployment identically.
//
// Update is safe to call while queries are in flight: the scheduler
// quiesces — it drains the executing engine pass, applies the update
// atomically, bumps the database epoch, and resumes — so no query ever
// observes a half-applied update. Concurrent updates serialise.
//
// Update deliberately takes no context: an update interrupted part-way
// would leave this replica diverged from its peers, which a digest check
// only catches at the next connect. It is atomic per server — validate
// everything, then apply.
func (s *Server) Update(updates map[uint64][]byte) error {
	// The scheduler validates the whole update set against the loaded
	// geometry before its quiesce gate — one source of truth shared with
	// the wire path — so a wrong-length record or out-of-range index
	// fails with a clear error before any in-flight pass is drained or
	// the engine touched.
	if err := s.sched.Update(updates); err != nil {
		return fmt.Errorf("impir: %w", err)
	}
	return nil
}

// QueueStats snapshots the request scheduler's admission and coalescing
// counters — queue depth, waits, coalesced pass sizes, busy rejections,
// and the database update epoch.
func (s *Server) QueueStats() metrics.SchedulerStats {
	return s.sched.Stats()
}

// Serve exposes the server over a TCP listener using the IM-PIR wire
// protocol. party is this server's index (0 or 1). Serve returns
// immediately; use Close to stop.
func (s *Server) Serve(lis net.Listener, party uint8) error {
	if s.srv != nil {
		return errors.New("impir: server already serving")
	}
	opts := []transport.ServerOption{
		transport.WithObserver(s.sm),
		transport.WithTraceRing(s.traces),
		transport.WithTraceSampler(s.sampler),
	}
	if s.allowWireUpdates {
		opts = append(opts, transport.WithWireUpdates())
	}
	if s.slowQuery > 0 {
		opts = append(opts, transport.WithSlowQuery(s.slowQuery))
	}
	if s.traceShard != "" {
		opts = append(opts, transport.WithShard(s.traceShard))
	}
	if s.logf != nil {
		opts = append(opts, transport.WithLogf(s.logf))
	}
	if s.jsonLogs {
		opts = append(opts, transport.WithJSONLogs())
	}
	srv, err := transport.NewServer(lis, s.sched, party, opts...)
	if err != nil {
		return err
	}
	s.srv = srv
	s.ready.Set(obs.CondServing, true)
	return nil
}

// ServeAdmin serves the operator endpoint — GET /metrics (Prometheus
// text exposition), /healthz (process liveness) and /readyz (503 until
// the database is loaded and the query listener accepts, and again
// while an update quiesces or a drain is underway) — on lis. It blocks
// until ShutdownAdmin (or Shutdown, which stops the admin endpoint
// last); the returned error is http.ErrServerClosed after a clean stop.
//
// The admin endpoint is its own listener, separate from the binary
// query protocol, so probes and scrapes keep answering through
// query-plane overload and drain. It exposes only operational
// aggregates; nothing per-query or secret-dependent is registered.
func (s *Server) ServeAdmin(lis net.Listener) error {
	return s.admin.Serve(lis)
}

// AdminAddr returns the admin listener address, or "" before ServeAdmin.
func (s *Server) AdminAddr() string { return s.admin.Addr() }

// WriteMetrics renders the server's metric families in the Prometheus
// text exposition format — the same bytes GET /metrics serves — for
// in-process consumers (tests, the load generator's artifact).
func (s *Server) WriteMetrics(w io.Writer) error { return s.reg.WriteText(w) }

// RecentTraces snapshots the server's trace ring — sampled and slow
// queries as party-local span trees, newest first, at least min long
// (0 keeps all). The same data GET /debug/traces serves.
func (s *Server) RecentTraces(min time.Duration) []TraceSnapshot {
	spans := s.traces.Snapshot(min)
	out := make([]TraceSnapshot, 0, len(spans))
	for _, sp := range spans {
		out = append(out, sp.Snapshot())
	}
	return out
}

// Shutdown stops the server gracefully: /readyz flips to 503 first (so
// an orchestrator stops routing), then the listener stops accepting,
// requests already admitted (queued or executing) complete and have
// their responses written, connections close, the engine is released,
// and the admin endpoint — which kept answering the 503 throughout the
// drain — stops last. ctx bounds the drain; on expiry remaining work is
// abandoned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Set(obs.CondServing, false)
	var err error
	if s.srv != nil {
		err = s.srv.Shutdown(ctx)
		s.srv = nil
	}
	if derr := s.sched.Drain(ctx); err == nil {
		err = derr
	}
	s.sched.Close()
	if cerr := s.eng.Close(); err == nil {
		err = cerr
	}
	if aerr := s.admin.Shutdown(ctx); err == nil {
		err = aerr
	}
	return err
}

// Addr returns the listening address, or nil when not serving.
func (s *Server) Addr() net.Addr {
	if s.srv == nil {
		return nil
	}
	return s.srv.Addr()
}

// Close stops the network listener (if any), the scheduler, and the
// engine immediately. Queued requests fail; use Shutdown to drain them
// first.
func (s *Server) Close() error {
	s.ready.Set(obs.CondServing, false)
	var err error
	if s.srv != nil {
		err = s.srv.Close()
		s.srv = nil
	}
	s.sched.Close()
	if cerr := s.eng.Close(); err == nil {
		err = cerr
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if aerr := s.admin.Shutdown(ctx); err == nil {
		err = aerr
	}
	return err
}
