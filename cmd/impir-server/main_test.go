package main

import (
	"path/filepath"
	"testing"

	"github.com/impir/impir"
)

func TestBuildDatabaseWorkloads(t *testing.T) {
	for _, w := range []string{"hash", "ct", "credentials", "blocklist"} {
		db, err := buildDatabase(w, 64, 7)
		if err != nil {
			t.Fatalf("buildDatabase(%q): %v", w, err)
		}
		if db.NumRecords() != 64 || db.RecordSize() != 32 {
			t.Errorf("%q geometry = (%d,%d)", w, db.NumRecords(), db.RecordSize())
		}
	}
}

func TestBuildDatabaseDeterministicAcrossParties(t *testing.T) {
	a, err := buildDatabase("hash", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildDatabase("hash", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("two servers with the same flags built different replicas")
	}
}

func TestBuildDatabaseUnknownWorkload(t *testing.T) {
	if _, err := buildDatabase("nope", 64, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestBuildKVDatabaseDeterministicAcrossParties: two keyword servers
// started with the same -records/-seed must serve byte-identical
// tables and write byte-identical manifests — the replica agreement a
// KV deployment rests on.
func TestBuildKVDatabaseDeterministicAcrossParties(t *testing.T) {
	dir := t.TempDir()
	pathA, pathB := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	a, err := buildKVDatabase(pathA, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildKVDatabase(pathB, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("two KV servers with the same flags built different replicas")
	}
	ma, err := impir.LoadKVManifest(pathA)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := impir.LoadKVManifest(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if ma.NumBuckets != mb.NumBuckets || len(ma.HashSeeds) != len(mb.HashSeeds) ||
		ma.HashSeeds[0] != mb.HashSeeds[0] {
		t.Fatal("manifests differ between identically seeded servers")
	}
	if uint64(a.NumRecords()) != ma.TotalBuckets() || a.RecordSize() != ma.RecordSize() {
		t.Fatalf("served DB geometry (%d,%d) does not match the written manifest (%d,%d)",
			a.NumRecords(), a.RecordSize(), ma.TotalBuckets(), ma.RecordSize())
	}
}
