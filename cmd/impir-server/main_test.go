package main

import "testing"

func TestBuildDatabaseWorkloads(t *testing.T) {
	for _, w := range []string{"hash", "ct", "credentials", "blocklist"} {
		db, err := buildDatabase(w, 64, 7)
		if err != nil {
			t.Fatalf("buildDatabase(%q): %v", w, err)
		}
		if db.NumRecords() != 64 || db.RecordSize() != 32 {
			t.Errorf("%q geometry = (%d,%d)", w, db.NumRecords(), db.RecordSize())
		}
	}
}

func TestBuildDatabaseDeterministicAcrossParties(t *testing.T) {
	a, err := buildDatabase("hash", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildDatabase("hash", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("two servers with the same flags built different replicas")
	}
}

func TestBuildDatabaseUnknownWorkload(t *testing.T) {
	if _, err := buildDatabase("nope", 64, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
