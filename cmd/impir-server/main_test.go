package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/keyword"
)

func TestBuildDatabaseWorkloads(t *testing.T) {
	for _, w := range []string{"hash", "ct", "credentials", "blocklist"} {
		db, err := buildDatabase(w, 64, 7)
		if err != nil {
			t.Fatalf("buildDatabase(%q): %v", w, err)
		}
		if db.NumRecords() != 64 || db.RecordSize() != 32 {
			t.Errorf("%q geometry = (%d,%d)", w, db.NumRecords(), db.RecordSize())
		}
	}
}

func TestBuildDatabaseDeterministicAcrossParties(t *testing.T) {
	a, err := buildDatabase("hash", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildDatabase("hash", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("two servers with the same flags built different replicas")
	}
}

func TestBuildDatabaseUnknownWorkload(t *testing.T) {
	if _, err := buildDatabase("nope", 64, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestBuildKVDatabaseDeterministicAcrossParties: two keyword servers
// started with the same -records/-seed must serve byte-identical
// tables and write byte-identical manifests — the replica agreement a
// KV deployment rests on.
func TestBuildKVDatabaseDeterministicAcrossParties(t *testing.T) {
	dir := t.TempDir()
	pathA, pathB := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	a, err := buildKVDatabase(pathA, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildKVDatabase(pathB, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("two KV servers with the same flags built different replicas")
	}
	ma, err := impir.LoadKVManifest(pathA)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := impir.LoadKVManifest(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if ma.NumBuckets != mb.NumBuckets || len(ma.HashSeeds) != len(mb.HashSeeds) ||
		ma.HashSeeds[0] != mb.HashSeeds[0] {
		t.Fatal("manifests differ between identically seeded servers")
	}
	if uint64(a.NumRecords()) != ma.TotalBuckets() || a.RecordSize() != ma.RecordSize() {
		t.Fatalf("served DB geometry (%d,%d) does not match the written manifest (%d,%d)",
			a.NumRecords(), a.RecordSize(), ma.TotalBuckets(), ma.RecordSize())
	}
}

// TestBuildDeploymentDatabaseShards: servers of different shards started
// from one deployment.json carve disjoint, correctly sized slices of the
// same synthetic database.
func TestBuildDeploymentDatabaseShards(t *testing.T) {
	dir := t.TempDir()
	d := impir.Deployment{RecordSize: 32, Shards: []impir.DeploymentShard{
		{FirstRecord: 0, NumRecords: 40, Parties: []impir.Party{
			{Replicas: []string{"a:1", "a:2"}}, {Replicas: []string{"b:1"}},
		}},
		{FirstRecord: 40, NumRecords: 24, Parties: []impir.Party{
			{Replicas: []string{"c:1"}}, {Replicas: []string{"d:1"}},
		}},
	}}
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "deployment.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	full, err := buildDatabase("hash", 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := buildDeploymentDatabase(path, 0, "hash", 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := buildDeploymentDatabase(path, 1, "hash", 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s0.NumRecords() != 40 || s1.NumRecords() != 24 {
		t.Fatalf("shard sizes (%d,%d), want (40,24)", s0.NumRecords(), s1.NumRecords())
	}
	if string(s0.Record(3)) != string(full.Record(3)) || string(s1.Record(5)) != string(full.Record(45)) {
		t.Fatal("shard rows do not match the full database")
	}
	if _, err := buildDeploymentDatabase(path, 2, "hash", 64, 7); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := buildDeploymentDatabase(path, 0, "hash", 128, 7); err == nil {
		t.Fatal("record-count mismatch against the manifest accepted")
	}
}

// TestBuildDeploymentDatabaseKeywordMismatch: a deployment.json whose
// keyword section does not match the locally rebuilt table must be
// rejected before serving.
func TestBuildDeploymentDatabaseKeyword(t *testing.T) {
	dir := t.TempDir()
	pairs := keyword.GeneratePairs(100, 3)
	table, err := keyword.BuildTable(pairs, keyword.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := impir.FlatDeployment("a:1", "b:1").WithKeyword(table.Manifest)
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "kv-deployment.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := buildDeploymentDatabase(path, 0, "hash", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.DB()
	if err != nil {
		t.Fatal(err)
	}
	if db.Digest() != want.Digest() {
		t.Fatal("rebuilt keyword database differs from the manifest's table")
	}
	// Wrong seed → different table → must be rejected, not served.
	if _, err := buildDeploymentDatabase(path, 0, "hash", 100, 4); err == nil {
		t.Fatal("keyword drift between deployment.json and rebuilt table accepted")
	}
}
