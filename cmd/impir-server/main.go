// Command impir-server runs one PIR server of a multi-server deployment.
//
// The server synthesises (or loads) its database replica deterministically
// from a seed, so two independently started servers with the same
// -records/-seed flags hold byte-identical replicas — which the client
// verifies on connect via database digests.
//
// A two-server deployment on one machine:
//
//	impir-server -listen 127.0.0.1:7100 -party 0 -records 65536 -seed 7 &
//	impir-server -listen 127.0.0.1:7101 -party 1 -records 65536 -seed 7 &
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -index 123
//
// Deployments with more than two servers (the naive share encoding) run
// one impir-server per party with -party 0..n-1.
//
// Sharded deployments pass a cluster manifest and a shard index: the
// server synthesises the full database, carves out its shard's row
// range, and serves only that slice — one process per (shard, replica):
//
//	impir-server -manifest cluster.json -shard 0 -party 0 -listen 127.0.0.1:7100 &
//	impir-server -manifest cluster.json -shard 0 -party 1 -listen 127.0.0.1:7101 &
//	impir-server -manifest cluster.json -shard 1 -party 0 -listen 127.0.0.1:7200 &
//	impir-server -manifest cluster.json -shard 1 -party 1 -listen 127.0.0.1:7201 &
//	impir-client -manifest cluster.json -index 123
//
// Keyword stores serve a cuckoo key→value table instead of an indexed
// database: with -kv-manifest the server synthesises -records
// deterministic key→value pairs from -seed, builds the cuckoo table
// (byte-identical across replicas started with the same flags), serves
// it, and writes the table manifest JSON to the given path for clients:
//
//	impir-server -kv-manifest table.json -records 65536 -seed 7 -party 0 -listen 127.0.0.1:7100 &
//	impir-server -kv-manifest table.json -records 65536 -seed 7 -party 1 -listen 127.0.0.1:7101 &
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -kv table.json get key-00000123
//
// The unified deployment manifest drives every topology through ONE
// flag pair: -deployment names the deployment.json (flat, sharded,
// replica sets per party, keyword tables — any combination) and -shard
// names this server's shard. The server synthesises the database (or,
// with a keyword section, the cuckoo table), carves its shard's row
// range, and serves it; replicas of one party run identical flags on
// different machines:
//
//	impir-server -deployment deployment.json -shard 0 -party 0 -listen 127.0.0.1:7100 &
//	impir-server -deployment deployment.json -shard 0 -party 1 -listen 127.0.0.1:7101 &
//	impir-server -deployment deployment.json -shard 1 -party 0 -listen 127.0.0.1:7200 &
//	impir-server -deployment deployment.json -shard 1 -party 1 -listen 127.0.0.1:7201 &
//	impir-client -deployment deployment.json -index 123
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/batchcode"
	"github.com/impir/impir/internal/cluster"
	"github.com/impir/impir/internal/keyword"
)

// jsonLogf renders transport log lines for -log-format=json: lines the
// transport already rendered as JSON objects (slow-query traces under
// JSONLogs) pass through verbatim, anything else is wrapped, so stderr
// stays one JSON object per line and log pipelines never need a regex.
func jsonLogf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if strings.HasPrefix(msg, "{") {
		fmt.Fprintln(os.Stderr, msg)
		return
	}
	b, err := json.Marshal(map[string]string{"msg": msg})
	if err != nil {
		return
	}
	fmt.Fprintln(os.Stderr, string(b))
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impir-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:7100", "address to listen on")
		party    = flag.Int("party", 0, "server index in the deployment (0..n-1)")
		engine   = flag.String("engine", "pim", "compute engine: pim, cpu, or gpu")
		records  = flag.Int("records", 1<<16, "records in the synthetic hash database")
		seed     = flag.Int64("seed", 1, "database generator seed (must match the peer server)")
		workload = flag.String("workload", "hash", "database workload: hash, ct, credentials, blocklist")
		dpus     = flag.Int("dpus", 0, "PIM engine: DPU count (0 = 2048)")
		clusters = flag.Int("clusters", 0, "PIM engine: DPU clusters (0 = 1)")
		threads  = flag.Int("threads", 0, "CPU engine: worker threads (0 = 32)")

		deploymentPath = flag.String("deployment", "",
			"unified deployment manifest JSON (deployment.json); the server carves its -shard row range and, with a keyword section, serves the cuckoo table")
		manifestPath = flag.String("manifest", "",
			"cluster manifest JSON; the server carves its shard's row range out of the synthetic database (deprecated: use -deployment)")
		shard = flag.Int("shard", 0, "this server's shard index in the manifest (with -deployment or -manifest)")

		kvManifestPath = flag.String("kv-manifest", "",
			"serve a keyword (key→value) store: build a cuckoo table from -records synthetic pairs (seeded by -seed, replacing -workload) and write the table manifest JSON to this path")

		allowUpdates = flag.Bool("allow-updates", false,
			"accept database updates from network clients; enable only where the update path is restricted to the database owner")

		queueDepth = flag.Int("queue-depth", 0,
			"scheduler admission queue depth; overflow is rejected busy (0 = 256)")
		coalesceWindow = flag.Duration("coalesce-window", 0,
			"how long to hold a single query to coalesce concurrent ones into one batch pass (0 = off)")
		maxCoalesce = flag.Int("max-coalesce", 0,
			"max single queries per coalesced pass (0 = 64)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second,
			"graceful drain bound on SIGTERM/SIGINT before in-flight requests are abandoned")

		adminAddr = flag.String("admin-addr", "",
			"serve the operator endpoint (GET /metrics, /healthz, /readyz, /debug/traces) on this address; empty disables it")
		slowQuery = flag.Duration("slow-query", 0,
			"log a structured trace for any query frame taking at least this long end-to-end (0 = off)")
		traceSample = flag.Float64("trace-sample", 0,
			"head-sample this fraction of queries arriving without a client trace context into the /debug/traces ring (0 = only client-sampled and slow queries, 1 = all)")
		traceRing = flag.Int("trace-ring", 0,
			"trace ring buffer capacity (0 = 256)")
		pprofOn = flag.Bool("pprof", false,
			"mount net/http/pprof under /debug/pprof/ on the admin endpoint")
		logFormat = flag.String("log-format", "text",
			"slow-query/trace log rendering: text (logfmt) or json (one object per line)")
	)
	flag.Parse()

	if *party < 0 || *party > 255 {
		return fmt.Errorf("party %d must be in 0..255", *party)
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	kind, err := impir.ParseEngineKind(*engine)
	if err != nil {
		return err
	}

	if *deploymentPath != "" && *manifestPath != "" {
		return fmt.Errorf("-deployment replaces -manifest; pass one")
	}

	var db *impir.DB
	switch {
	case *deploymentPath != "":
		db, err = buildDeploymentDatabase(*deploymentPath, *shard, *workload, *records, *seed)
	case *kvManifestPath != "":
		*workload = "keyword"
		db, err = buildKVDatabase(*kvManifestPath, *records, *seed)
	default:
		db, err = buildDatabase(*workload, *records, *seed)
	}
	if err != nil {
		return err
	}
	if *manifestPath != "" {
		db, err = shardDatabase(db, *manifestPath, *shard)
		if err != nil {
			return err
		}
	}

	// Sharded invocations stamp slow-query traces with their shard so an
	// operator tailing logs from many processes can tell them apart.
	traceShard := ""
	if *deploymentPath != "" || *manifestPath != "" {
		traceShard = strconv.Itoa(*shard)
	}
	scfg := impir.ServerConfig{
		Engine:             kind,
		DPUs:               *dpus,
		Clusters:           *clusters,
		Threads:            *threads,
		QueueDepth:         *queueDepth,
		CoalesceWindow:     *coalesceWindow,
		MaxCoalesce:        *maxCoalesce,
		AllowWireUpdates:   *allowUpdates,
		SlowQueryThreshold: *slowQuery,
		TraceShard:         traceShard,
		TraceSampleRate:    *traceSample,
		TraceRingSize:      *traceRing,
		EnablePprof:        *pprofOn,
	}
	if *logFormat == "json" {
		scfg.JSONLogs = true
		scfg.SlowQueryLogf = jsonLogf
	}
	srv, err := impir.NewServer(scfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	log.Printf("loading %d×%dB records (%s workload, seed %d) into %s engine…",
		db.NumRecords(), db.RecordSize(), *workload, *seed, srv.EngineName())
	if err := srv.Load(db); err != nil {
		return err
	}
	digest := srv.Database().Digest()
	log.Printf("replica digest %x", digest[:8])

	// The admin endpoint starts before the query listener so /readyz can
	// answer 503 during the (potentially long) PIM preload of a restarted
	// replica — an orchestrator sees "up but not ready", not "down".
	// Admin serving errors after shutdown are expected (ErrServerClosed);
	// anything earlier is fatal because an operator relying on probes
	// must not run blind.
	adminErr := make(chan error, 1)
	if *adminAddr != "" {
		alis, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		go func() { adminErr <- srv.ServeAdmin(alis) }()
		log.Printf("admin endpoint (metrics, healthz, readyz) on %s", alis.Addr())
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if err := srv.Serve(lis, uint8(*party)); err != nil {
		return err
	}
	log.Printf("party %d serving %s engine on %s", *party, srv.EngineName(), srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case <-stop:
	case err := <-adminErr:
		return fmt.Errorf("admin endpoint failed: %w", err)
	}
	// Shutdown flips /readyz to 503 first, drains queries, and stops the
	// admin listener last — so the orchestrator watches the whole drain.
	log.Printf("draining (up to %v)…", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(ctx)
	log.Printf("final queue stats: %v", srv.QueueStats())
	if err != nil {
		return fmt.Errorf("graceful drain incomplete: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

// buildDeploymentDatabase synthesises the database a unified deployment
// manifest describes and carves this server's shard out of it. With a
// keyword section the cuckoo table is rebuilt from (-records, -seed)
// and must reproduce the manifest's geometry exactly — catching a
// deployment.json that drifted from the data it was generated for
// before a single query is served.
func buildDeploymentDatabase(path string, shard int, workload string, records int, seed int64) (*impir.DB, error) {
	d, err := impir.LoadDeployment(path)
	if err != nil {
		return nil, err
	}
	var db *impir.DB
	if d.Keyword != nil {
		pairs := keyword.GeneratePairs(records, seed)
		table, err := keyword.BuildTable(pairs, keyword.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(table.Manifest, *d.Keyword) {
			return nil, fmt.Errorf("rebuilt keyword table does not match the deployment's keyword section (were -records/-seed %d/%d the values deployment.json was generated with?)", records, seed)
		}
		if db, err = table.DB(); err != nil {
			return nil, err
		}
		log.Printf("keyword store: %d pairs in %d+%d buckets (load factor %.2f)",
			len(pairs), table.Manifest.NumBuckets, table.Manifest.StashBuckets, table.LoadFactor())
	} else if db, err = buildDatabase(workload, records, seed); err != nil {
		return nil, err
	}
	if d.BatchCode != nil {
		// The deployment's rows are a batch-code encoding of the logical
		// database just built: replicate each record into its r candidate
		// buckets before the geometry checks and shard carving — the
		// served shards hold coded rows, and the layout replay is
		// deterministic, so independently started replicas stay
		// byte-identical.
		code := *d.BatchCode
		if uint64(db.NumRecords()) != code.NumRecords {
			return nil, fmt.Errorf("synthetic database has %d records, the deployment's batch code encodes %d (were -records/-seed the values deployment.json was generated for?)",
				db.NumRecords(), code.NumRecords)
		}
		if db, err = batchcode.Encode(db, code); err != nil {
			return nil, err
		}
		log.Printf("batch code: %d logical records → %d coded rows (%d buckets × %d rows, %d-way replication)",
			code.NumRecords, code.TotalRows(), code.Buckets, code.BucketRows, code.Choices)
	}
	if d.RecordSize > 0 && db.RecordSize() != d.RecordSize {
		return nil, fmt.Errorf("synthetic database has %d-byte records, deployment declares %d", db.RecordSize(), d.RecordSize)
	}
	if d.NumShards() == 1 {
		if want := d.Shards[0].NumRecords; want > 0 && uint64(db.NumRecords()) != want {
			return nil, fmt.Errorf("synthetic database has %d records, deployment declares %d", db.NumRecords(), want)
		}
		return db, nil
	}
	if shard < 0 || shard >= d.NumShards() {
		return nil, fmt.Errorf("shard %d outside deployment of %d shards", shard, d.NumShards())
	}
	m, err := d.ShardManifest()
	if err != nil {
		return nil, err
	}
	part, err := cluster.ExtractShard(db, m, shard)
	if err != nil {
		return nil, err
	}
	log.Printf("serving shard %d/%d: global records [%d,%d)",
		shard, d.NumShards(), d.Shards[shard].FirstRecord, d.Shards[shard].End())
	return part, nil
}

// shardDatabase carves shard's row range out of the full database per
// the manifest, so independently started shard servers with the same
// -records/-seed flags hold byte-identical cohort replicas.
func shardDatabase(db *impir.DB, manifestPath string, shard int) (*impir.DB, error) {
	m, err := cluster.Load(manifestPath)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= m.NumShards() {
		return nil, fmt.Errorf("shard %d outside manifest of %d shards", shard, m.NumShards())
	}
	// ExtractShard carves only this server's range — no point holding
	// all S shard copies in memory just to keep one.
	part, err := cluster.ExtractShard(db, m, shard)
	if err != nil {
		return nil, err
	}
	log.Printf("serving shard %d/%d: global records [%d,%d)",
		shard, m.NumShards(), m.Shards[shard].FirstRecord, m.Shards[shard].End())
	return part, nil
}

// buildKVDatabase synthesises a deterministic keyword corpus, builds
// its cuckoo table, and writes the table manifest for clients. The
// build depends only on (records, seed), so independently started
// replicas serve byte-identical tables — and publish identical
// manifest files (atomically, via rename: replicas sharing a path and
// clients polling for it never observe a truncated write).
func buildKVDatabase(manifestPath string, records int, seed int64) (*impir.DB, error) {
	pairs := keyword.GeneratePairs(records, seed)
	table, err := keyword.BuildTable(pairs, keyword.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	db, err := table.DB()
	if err != nil {
		return nil, err
	}
	data, err := table.Manifest.JSON()
	if err != nil {
		return nil, err
	}
	tmp := fmt.Sprintf("%s.%d.tmp", manifestPath, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return nil, fmt.Errorf("write kv manifest: %w", err)
	}
	if err := os.Rename(tmp, manifestPath); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("publish kv manifest: %w", err)
	}
	m := table.Manifest
	log.Printf("keyword store: %d pairs in %d+%d buckets (k=%d, capacity %d, load factor %.2f, %d stashed); manifest written to %s",
		len(pairs), m.NumBuckets, m.StashBuckets, m.Hashes(), m.BucketCapacity,
		table.LoadFactor(), table.Stashed(), manifestPath)
	return db, nil
}

func buildDatabase(workload string, records int, seed int64) (*impir.DB, error) {
	switch workload {
	case "hash":
		return impir.GenerateHashDB(records, seed)
	case "ct":
		db, _, err := impir.GenerateCTLog(records, seed)
		return db, err
	case "credentials":
		db, _, err := impir.GenerateCredentialDB(records, seed)
		return db, err
	case "blocklist":
		db, _, err := impir.GenerateBlocklist(records, seed)
		return db, err
	default:
		return nil, fmt.Errorf("unknown workload %q (want hash, ct, credentials, or blocklist)", workload)
	}
}
