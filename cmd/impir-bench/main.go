// Command impir-bench regenerates the paper's evaluation artefacts: every
// figure of §5 plus Table 1, printed as aligned text tables with the
// paper-shape checks evaluated inline.
//
// Usage:
//
//	impir-bench                         # all experiments
//	impir-bench -experiment fig9a       # one experiment
//	impir-bench -verify-records 16384   # bigger functional verification
//	impir-bench -verify-records 0       # model layer only (fast)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/impir/impir/internal/bench"
)

var runners = map[string]func(bench.Options) *bench.Report{
	"fig3a":   bench.Fig3a,
	"fig3b":   bench.Fig3b,
	"fig9a":   bench.Fig9a,
	"fig9b":   bench.Fig9b,
	"fig9c":   bench.Fig9c,
	"fig9d":   bench.Fig9d,
	"fig10a":  bench.Fig10a,
	"fig10b":  bench.Fig10b,
	"table1":  bench.Table1,
	"fig11a":  bench.Fig11a,
	"fig11b":  bench.Fig11b,
	"fig12a":  bench.Fig12a,
	"fig12b":  bench.Fig12b,
	"a1":      bench.AblationEvalStrategies,
	"a2":      bench.AblationTasklets,
	"a3":      bench.AblationCommunication,
	"a4":      bench.AblationSingleServer,
	"a5":      bench.AblationEvalModes,
	"a6":      bench.AblationResidentVsBatched,
	"a7":      bench.AblationBandwidthScaling,
	"shards":    bench.ShardScaling,
	"keyword":   bench.KeywordLookup,
	"hedging":   bench.HedgingTail,
	"batchfuse": bench.BatchFuse,
	"batchcode": bench.BatchCode,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "impir-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("impir-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all",
		"experiment to run: all, or one of "+strings.Join(sortedNames(), ", "))
	verifyRecords := fs.Int("verify-records", 1<<12,
		"records in the scaled functional verification database (0 to skip)")
	csvDir := fs.String("csv", "",
		"directory to also write each experiment's data series as CSV")
	jsonOut := fs.Bool("json", false,
		"write the reports as a JSON array to stdout instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := bench.Options{VerifyRecords: *verifyRecords}

	var reports []*bench.Report
	if *experiment == "all" {
		reports = append(bench.All(opts), bench.Ablations(opts)...)
	} else {
		runner, ok := runners[strings.ToLower(*experiment)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want all or one of %s)",
				*experiment, strings.Join(sortedNames(), ", "))
		}
		reports = []*bench.Report{runner(opts)}
	}

	failures := 0
	for _, r := range reports {
		if !*jsonOut {
			r.Print(os.Stdout)
		}
		if !r.AllChecksPass() {
			failures++
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				return err
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed their paper-shape checks", failures)
	}
	return nil
}

func writeCSV(dir string, r *bench.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, r.FileStem()+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedNames() []string {
	return []string{
		"fig3a", "fig3b", "fig9a", "fig9b", "fig9c", "fig9d",
		"fig10a", "fig10b", "table1", "fig11a", "fig11b", "fig12a", "fig12b",
		"a1", "a2", "a3", "a4", "a5", "a6", "a7", "shards", "keyword", "hedging",
		"batchfuse", "batchcode",
	}
}
