package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"github.com/impir/impir/internal/bench"
)

func TestRunSingleExperiment(t *testing.T) {
	// Model layer only (verify-records 0) keeps this fast.
	if err := run([]string{"-experiment", "fig3b", "-verify-records", "0"}); err != nil {
		t.Fatalf("run(fig3b): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunnerNamesRegistered(t *testing.T) {
	for _, name := range sortedNames() {
		if _, ok := runners[name]; !ok {
			t.Errorf("experiment %q listed but not registered", name)
		}
	}
	if len(runners) != len(sortedNames()) {
		t.Errorf("%d runners registered but %d listed", len(runners), len(sortedNames()))
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "table1", "-verify-records", "0", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/table-1.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dpXOR") {
		t.Fatalf("csv missing expected column: %s", data)
	}
}

func TestRunJSONReports(t *testing.T) {
	// -json must emit one parseable array of schema-tagged reports on
	// stdout and suppress the text tables.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-experiment", "table1", "-verify-records", "0", "-json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		Schema  string     `json:"schema"`
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		AllPass bool       `json:"all_checks_pass"`
	}
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatalf("stdout is not a JSON report array: %v\n%s", err, data)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Schema != bench.ReportSchema {
		t.Errorf("schema %q, want %q", rep.Schema, bench.ReportSchema)
	}
	if rep.ID != "Table 1" || len(rep.Columns) == 0 || len(rep.Rows) == 0 {
		t.Errorf("report content missing: %+v", rep)
	}
	if !rep.AllPass {
		t.Error("table1 model-layer checks failed in JSON run")
	}
	if strings.Contains(string(data), "== Table 1") {
		t.Error("-json also printed the text table to stdout")
	}
}
