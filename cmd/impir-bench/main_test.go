package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	// Model layer only (verify-records 0) keeps this fast.
	if err := run([]string{"-experiment", "fig3b", "-verify-records", "0"}); err != nil {
		t.Fatalf("run(fig3b): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunnerNamesRegistered(t *testing.T) {
	for _, name := range sortedNames() {
		if _, ok := runners[name]; !ok {
			t.Errorf("experiment %q listed but not registered", name)
		}
	}
	if len(runners) != len(sortedNames()) {
		t.Errorf("%d runners registered but %d listed", len(runners), len(sortedNames()))
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-experiment", "table1", "-verify-records", "0", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/table-1.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dpXOR") {
		t.Fatalf("csv missing expected column: %s", data)
	}
}
