package main

import "testing"

func TestParseIndices(t *testing.T) {
	got, err := parseIndices("1, 2,30")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseIndicesRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "abc", "1,,2", "-5"} {
		if _, err := parseIndices(s); err == nil {
			t.Errorf("parseIndices(%q) accepted", s)
		}
	}
}

func TestParseAddrs(t *testing.T) {
	got := parseAddrs(" a:1, b:2 ,,c:3")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
