// Command impir-client privately retrieves records from a multi-server
// IM-PIR deployment — two servers under the DPF encoding, or any n ≥ 2
// under the naive share encoding (selected automatically from the server
// count, or forced with -encoding).
//
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -index 123
//	impir-client -servers a:7100,b:7100 -index 5,9,1000     # batched
//	impir-client -servers a:7100,b:7100,c:7100 -index 123   # 3-server shares
//
// Against a sharded deployment, pass the cluster manifest instead of
// -servers; indices are global, and every shard cohort receives a
// well-formed sub-query so none learns which shard mattered:
//
//	impir-client -manifest cluster.json -index 123
//
// Against a keyword store (impir-server -kv-manifest), pass the table
// manifest with -kv and look keys up by name instead of index; the
// servers see a constant-shape probe batch whether the key exists or
// not:
//
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -kv table.json get key-00000123
//	impir-client -manifest cluster.json -kv table.json get key-00000123   # sharded store
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/impir/impir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impir-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers = flag.String("servers", "127.0.0.1:7100,127.0.0.1:7101",
			"comma-separated addresses of the non-colluding servers (≥ 2)")
		manifestPath = flag.String("manifest", "",
			"cluster manifest JSON for a sharded deployment (replaces -servers)")
		indexFlag = flag.String("index", "0", "record index (or comma-separated indices) to retrieve")
		kvPath    = flag.String("kv", "",
			"keyword-table manifest JSON; switches to key→value mode: impir-client -kv table.json get <key> [key...]")
		encoding = flag.String("encoding", "auto",
			"query encoding: auto, dpf (2 servers), or shares (any n)")
		timeout = flag.Duration("timeout", 30*time.Second, "overall deadline for connect and retrieval")
	)
	flag.Parse()

	indices, err := parseIndices(*indexFlag)
	if err != nil {
		return err
	}
	enc, err := impir.ParseEncoding(*encoding)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *kvPath != "" {
		return runKV(ctx, *kvPath, *servers, *manifestPath, enc, flag.Args())
	}

	var retriever interface {
		Retrieve(context.Context, uint64) ([]byte, error)
		RetrieveBatch(context.Context, []uint64) ([][]byte, error)
	}
	if *manifestPath != "" {
		m, err := impir.LoadManifest(*manifestPath)
		if err != nil {
			return err
		}
		cc, err := impir.DialCluster(ctx, m, impir.WithEncoding(enc))
		if err != nil {
			return err
		}
		defer cc.Close()
		fmt.Printf("connected to %d shard cohorts: %d records × %d bytes, replicas verified per cohort\n",
			cc.Shards(), cc.NumRecords(), cc.RecordSize())
		retriever = cc
	} else {
		addrs := parseAddrs(*servers)
		if len(addrs) < 2 {
			return fmt.Errorf("need at least two server addresses, got %d", len(addrs))
		}
		cli, err := impir.Dial(ctx, addrs, impir.WithEncoding(enc))
		if err != nil {
			return err
		}
		defer cli.Close()
		fmt.Printf("connected to %d servers: %d records × %d bytes, replicas verified, %s encoding\n",
			cli.Servers(), cli.NumRecords(), cli.RecordSize(), cli.Encoding())
		retriever = cli
	}

	start := time.Now()
	var records [][]byte
	if len(indices) == 1 {
		rec, err := retriever.Retrieve(ctx, indices[0])
		if err != nil {
			return err
		}
		records = [][]byte{rec}
	} else {
		records, err = retriever.RetrieveBatch(ctx, indices)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	for i, rec := range records {
		fmt.Printf("record[%d] = %x\n", indices[i], rec)
	}
	fmt.Printf("%d record(s) in %v (no server learned which)\n", len(records), elapsed.Round(time.Millisecond))
	return nil
}

// runKV executes a keyword-store operation: `get <key> [key...]`
// against a plain or sharded deployment. A present key prints its
// value; an absent key is an error — which only the client learns, the
// servers saw the same constant-shape probe either way.
func runKV(ctx context.Context, kvPath, servers, manifestPath string, enc impir.Encoding, args []string) error {
	if len(args) < 2 || args[0] != "get" {
		return fmt.Errorf("keyword mode usage: impir-client -kv table.json get <key> [key...]")
	}
	m, err := impir.LoadKVManifest(kvPath)
	if err != nil {
		return err
	}

	var kv *impir.KVClient
	if manifestPath != "" {
		cm, err := impir.LoadManifest(manifestPath)
		if err != nil {
			return err
		}
		kv, err = impir.DialKVCluster(ctx, cm, m, impir.WithEncoding(enc))
		if err != nil {
			return err
		}
		fmt.Printf("connected to sharded keyword store: %d buckets (%d-probe lookups)\n",
			m.TotalBuckets(), kv.ProbesPerKey())
	} else {
		addrs := parseAddrs(servers)
		if len(addrs) < 2 {
			return fmt.Errorf("need at least two server addresses, got %d", len(addrs))
		}
		kv, err = impir.DialKV(ctx, addrs, m, impir.WithEncoding(enc))
		if err != nil {
			return err
		}
		fmt.Printf("connected to keyword store: %d buckets (%d-probe lookups), replicas verified\n",
			m.TotalBuckets(), kv.ProbesPerKey())
	}
	defer kv.Close()

	keys := make([][]byte, len(args[1:]))
	for i, a := range args[1:] {
		keys[i] = []byte(a)
	}
	start := time.Now()
	vals, err := kv.GetBatch(ctx, keys)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	missing := 0
	for i, v := range vals {
		if v == nil {
			fmt.Printf("%s: not found\n", keys[i])
			missing++
		} else {
			fmt.Printf("%s = %x\n", keys[i], v)
		}
	}
	fmt.Printf("%d key(s) in %v (no server learned the keys — or whether they exist)\n",
		len(keys), elapsed.Round(time.Millisecond))
	if missing > 0 {
		return fmt.Errorf("%d of %d key(s) not found", missing, len(keys))
	}
	return nil
}

func parseAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parseIndices(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
