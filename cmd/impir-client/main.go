// Command impir-client privately retrieves records from a two-server
// IM-PIR deployment.
//
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -index 123
//	impir-client -servers a:7100,b:7100 -index 5,9,1000   # batched
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/impir/impir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impir-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers = flag.String("servers", "127.0.0.1:7100,127.0.0.1:7101",
			"comma-separated addresses of the two non-colluding servers")
		indexFlag = flag.String("index", "0", "record index (or comma-separated indices) to retrieve")
	)
	flag.Parse()

	addrs := strings.Split(*servers, ",")
	if len(addrs) != 2 {
		return fmt.Errorf("need exactly two server addresses, got %d", len(addrs))
	}
	indices, err := parseIndices(*indexFlag)
	if err != nil {
		return err
	}

	sess, err := impir.Connect(strings.TrimSpace(addrs[0]), strings.TrimSpace(addrs[1]))
	if err != nil {
		return err
	}
	defer sess.Close()
	fmt.Printf("connected: %d records × %d bytes, replicas verified\n",
		sess.NumRecords(), sess.RecordSize())

	start := time.Now()
	var records [][]byte
	if len(indices) == 1 {
		rec, err := sess.Retrieve(indices[0])
		if err != nil {
			return err
		}
		records = [][]byte{rec}
	} else {
		records, err = sess.RetrieveBatch(indices)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	for i, rec := range records {
		fmt.Printf("record[%d] = %x\n", indices[i], rec)
	}
	fmt.Printf("%d record(s) in %v (neither server learned which)\n", len(records), elapsed.Round(time.Millisecond))
	return nil
}

func parseIndices(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
