// Command impir-client privately retrieves records from a multi-server
// IM-PIR deployment — two servers under the DPF encoding, or any n ≥ 2
// under the naive share encoding (selected automatically from the server
// count, or forced with -encoding).
//
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -index 123
//	impir-client -servers a:7100,b:7100 -index 5,9,1000     # batched
//	impir-client -servers a:7100,b:7100,c:7100 -index 123   # 3-server shares
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/impir/impir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impir-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers = flag.String("servers", "127.0.0.1:7100,127.0.0.1:7101",
			"comma-separated addresses of the non-colluding servers (≥ 2)")
		indexFlag = flag.String("index", "0", "record index (or comma-separated indices) to retrieve")
		encoding  = flag.String("encoding", "auto",
			"query encoding: auto, dpf (2 servers), or shares (any n)")
		timeout = flag.Duration("timeout", 30*time.Second, "overall deadline for connect and retrieval")
	)
	flag.Parse()

	addrs := parseAddrs(*servers)
	if len(addrs) < 2 {
		return fmt.Errorf("need at least two server addresses, got %d", len(addrs))
	}
	indices, err := parseIndices(*indexFlag)
	if err != nil {
		return err
	}
	enc, err := impir.ParseEncoding(*encoding)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cli, err := impir.Dial(ctx, addrs, impir.WithEncoding(enc))
	if err != nil {
		return err
	}
	defer cli.Close()
	fmt.Printf("connected to %d servers: %d records × %d bytes, replicas verified, %s encoding\n",
		cli.Servers(), cli.NumRecords(), cli.RecordSize(), cli.Encoding())

	start := time.Now()
	var records [][]byte
	if len(indices) == 1 {
		rec, err := cli.Retrieve(ctx, indices[0])
		if err != nil {
			return err
		}
		records = [][]byte{rec}
	} else {
		records, err = cli.RetrieveBatch(ctx, indices)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	for i, rec := range records {
		fmt.Printf("record[%d] = %x\n", indices[i], rec)
	}
	fmt.Printf("%d record(s) in %v (no server learned which)\n", len(records), elapsed.Round(time.Millisecond))
	return nil
}

func parseAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parseIndices(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
