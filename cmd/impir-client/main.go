// Command impir-client privately retrieves records from a multi-server
// IM-PIR deployment — two servers under the DPF encoding, or any n ≥ 2
// under the naive share encoding (selected automatically from the server
// count, or forced with -encoding).
//
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -index 123
//	impir-client -servers a:7100,b:7100 -index 5,9,1000     # batched
//	impir-client -servers a:7100,b:7100,c:7100 -index 123   # 3-server shares
//
// Against a sharded deployment, pass the cluster manifest instead of
// -servers; indices are global, and every shard cohort receives a
// well-formed sub-query so none learns which shard mattered:
//
//	impir-client -manifest cluster.json -index 123
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/impir/impir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impir-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers = flag.String("servers", "127.0.0.1:7100,127.0.0.1:7101",
			"comma-separated addresses of the non-colluding servers (≥ 2)")
		manifestPath = flag.String("manifest", "",
			"cluster manifest JSON for a sharded deployment (replaces -servers)")
		indexFlag = flag.String("index", "0", "record index (or comma-separated indices) to retrieve")
		encoding  = flag.String("encoding", "auto",
			"query encoding: auto, dpf (2 servers), or shares (any n)")
		timeout = flag.Duration("timeout", 30*time.Second, "overall deadline for connect and retrieval")
	)
	flag.Parse()

	indices, err := parseIndices(*indexFlag)
	if err != nil {
		return err
	}
	enc, err := impir.ParseEncoding(*encoding)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var retriever interface {
		Retrieve(context.Context, uint64) ([]byte, error)
		RetrieveBatch(context.Context, []uint64) ([][]byte, error)
	}
	if *manifestPath != "" {
		m, err := impir.LoadManifest(*manifestPath)
		if err != nil {
			return err
		}
		cc, err := impir.DialCluster(ctx, m, impir.WithEncoding(enc))
		if err != nil {
			return err
		}
		defer cc.Close()
		fmt.Printf("connected to %d shard cohorts: %d records × %d bytes, replicas verified per cohort\n",
			cc.Shards(), cc.NumRecords(), cc.RecordSize())
		retriever = cc
	} else {
		addrs := parseAddrs(*servers)
		if len(addrs) < 2 {
			return fmt.Errorf("need at least two server addresses, got %d", len(addrs))
		}
		cli, err := impir.Dial(ctx, addrs, impir.WithEncoding(enc))
		if err != nil {
			return err
		}
		defer cli.Close()
		fmt.Printf("connected to %d servers: %d records × %d bytes, replicas verified, %s encoding\n",
			cli.Servers(), cli.NumRecords(), cli.RecordSize(), cli.Encoding())
		retriever = cli
	}

	start := time.Now()
	var records [][]byte
	if len(indices) == 1 {
		rec, err := retriever.Retrieve(ctx, indices[0])
		if err != nil {
			return err
		}
		records = [][]byte{rec}
	} else {
		records, err = retriever.RetrieveBatch(ctx, indices)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	for i, rec := range records {
		fmt.Printf("record[%d] = %x\n", indices[i], rec)
	}
	fmt.Printf("%d record(s) in %v (no server learned which)\n", len(records), elapsed.Round(time.Millisecond))
	return nil
}

func parseAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parseIndices(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
