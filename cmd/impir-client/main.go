// Command impir-client privately retrieves records from an IM-PIR
// deployment. The unified entry point is a deployment manifest — one
// JSON file describing any topology (flat pairs, shards, replica sets
// per party, keyword tables), driven through impir.Open:
//
//	impir-client -deployment deployment.json -index 123
//	impir-client -deployment deployment.json -index 5,9,1000        # batched
//	impir-client -deployment kv-deployment.json get key-00000123    # keyword section
//
// Hedging across each party's replica set is on by default (first
// valid answer per party wins); -no-hedge disables it and -retries
// grants a transient-failure retry budget.
//
// The pre-manifest flags remain for quick experiments: -servers for a
// flat deployment, -manifest for a sharded one, -kv for a keyword
// table — each equivalent to the corresponding deployment manifest:
//
//	impir-client -servers 127.0.0.1:7100,127.0.0.1:7101 -index 123
//	impir-client -servers a:7100,b:7100,c:7100 -index 123   # 3-server shares
//	impir-client -manifest cluster.json -index 123
//	impir-client -servers a:7100,b:7100 -kv table.json get key-00000123
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/impir/impir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "impir-client:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		deploymentPath = flag.String("deployment", "",
			"unified deployment manifest JSON; drives any topology (replaces -servers/-manifest/-kv)")
		servers = flag.String("servers", "127.0.0.1:7100,127.0.0.1:7101",
			"comma-separated addresses of the non-colluding servers (≥ 2)")
		manifestPath = flag.String("manifest", "",
			"cluster manifest JSON for a sharded deployment (replaces -servers)")
		indexFlag = flag.String("index", "0", "record index (or comma-separated indices) to retrieve")
		kvPath    = flag.String("kv", "",
			"keyword-table manifest JSON; switches to key→value mode: impir-client -kv table.json get <key> [key...]")
		encoding = flag.String("encoding", "auto",
			"query encoding: auto, dpf (2 servers), or shares (any n)")
		timeout = flag.Duration("timeout", 30*time.Second, "overall deadline for connect and retrieval")
		retries = flag.Int("retries", 0, "extra whole-operation attempts after transient failures")
		noHedge = flag.Bool("no-hedge", false, "disable hedged fan-out across replica sets")
		trace   = flag.Bool("trace", false,
			"trace the retrieval and print the span tree JSON (per-shard, per-party, per-attempt timings; each server receives only its own fresh span ID)")
	)
	flag.Parse()

	enc, err := impir.ParseEncoding(*encoding)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	opts := []impir.ClientOption{
		impir.WithEncoding(enc),
		impir.WithDefaultCallOptions(
			impir.WithRetries(*retries),
			impir.WithHedging(!*noHedge),
		),
	}
	var tracer *impir.Tracer
	if *trace {
		tracer = impir.NewTracer(impir.TracerConfig{SampleRate: 1})
		opts = append(opts, tracer.Option())
	}

	// Resolve whatever flags were given into one deployment manifest —
	// the unified path every topology goes through.
	var d impir.Deployment
	switch {
	case *deploymentPath != "":
		if d, err = impir.LoadDeployment(*deploymentPath); err != nil {
			return err
		}
	case *manifestPath != "":
		m, err := impir.LoadManifest(*manifestPath)
		if err != nil {
			return err
		}
		d = impir.DeploymentFromManifest(m)
	default:
		addrs := parseAddrs(*servers)
		if len(addrs) < 2 {
			return fmt.Errorf("need at least two server addresses, got %d", len(addrs))
		}
		d = impir.FlatDeployment(addrs...)
	}
	if *kvPath != "" {
		m, err := impir.LoadKVManifest(*kvPath)
		if err != nil {
			return err
		}
		d = d.WithKeyword(m)
	}

	if d.Keyword != nil {
		return runKV(ctx, d, opts, tracer, flag.Args())
	}

	indices, err := parseIndices(*indexFlag)
	if err != nil {
		return err
	}
	store, err := impir.Open(ctx, d, opts...)
	if err != nil {
		return err
	}
	defer store.Close()
	fmt.Printf("connected: %d shard(s), %d records × %d bytes, replicas verified per cohort\n",
		d.NumShards(), store.NumRecords(), store.RecordSize())

	start := time.Now()
	var records [][]byte
	if len(indices) == 1 {
		rec, err := store.Retrieve(ctx, indices[0])
		if err != nil {
			return err
		}
		records = [][]byte{rec}
	} else {
		records, err = store.RetrieveBatch(ctx, indices)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	for i, rec := range records {
		fmt.Printf("record[%d] = %x\n", indices[i], rec)
	}
	fmt.Printf("%d record(s) in %v (no server learned which)\n", len(records), elapsed.Round(time.Millisecond))
	if st := store.Stats(); st.Hedges > 0 {
		fmt.Printf("hedging: %d hedge(s), %d won\n", st.Hedges, st.HedgeWins)
	}
	printTraces(tracer)
	return nil
}

// printTraces dumps the tracer's span trees as indented JSON — the
// whole point of -trace is reading them.
func printTraces(tracer *impir.Tracer) {
	if tracer == nil {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(tracer.RecentTraces(0))
}

// runKV executes a keyword-store operation: `get <key> [key...]`
// against the deployment's keyword table. A present key prints its
// value; an absent key is an error — which only the client learns, the
// servers saw the same constant-shape probe either way.
func runKV(ctx context.Context, d impir.Deployment, opts []impir.ClientOption, tracer *impir.Tracer, args []string) error {
	if len(args) < 2 || args[0] != "get" {
		return fmt.Errorf("keyword mode usage: impir-client -deployment kv-deployment.json get <key> [key...]")
	}
	kv, err := impir.OpenKV(ctx, d, opts...)
	if err != nil {
		return err
	}
	defer kv.Close()
	fmt.Printf("connected to keyword store: %d shard(s), %d buckets (%d-probe lookups)\n",
		d.NumShards(), d.Keyword.TotalBuckets(), kv.ProbesPerKey())

	keys := make([][]byte, len(args[1:]))
	for i, a := range args[1:] {
		keys[i] = []byte(a)
	}
	start := time.Now()
	vals, err := kv.GetBatch(ctx, keys)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	missing := 0
	for i, v := range vals {
		if v == nil {
			fmt.Printf("%s: not found\n", keys[i])
			missing++
		} else {
			fmt.Printf("%s = %x\n", keys[i], v)
		}
	}
	fmt.Printf("%d key(s) in %v (no server learned the keys — or whether they exist)\n",
		len(keys), elapsed.Round(time.Millisecond))
	printTraces(tracer)
	if missing > 0 {
		return fmt.Errorf("%d of %d key(s) not found", missing, len(keys))
	}
	return nil
}

func parseAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parseIndices(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad index %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
