package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"github.com/impir/impir/internal/loadgen"
)

// shortProfile is a sub-second selfserve run for CLI tests.
func shortProfile(extra ...string) []string {
	args := []string{
		"-selfserve", "-records", "512", "-engine", "cpu",
		"-qps", "150", "-duration", "800ms", "-warmup", "200ms",
		"-interval", "0", "-clients", "8", "-workers", "16", "-conns", "2",
		"-seed", "7",
	}
	return append(args, extra...)
}

// TestSelfserveJSONArtifact: one selfserve run must emit a parseable
// artifact carrying the schema tag, the full fingerprint, the load
// accounting, and — because selfserve runs the servers in-process — the
// per-server scheduler deltas.
func TestSelfserveJSONArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(shortProfile("-json"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res loadgen.Result
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("artifact not parseable: %v\n%s", err, stdout.String())
	}
	if res.Schema != loadgen.ResultSchema {
		t.Errorf("schema %q", res.Schema)
	}
	fp := res.Fingerprint
	if fp.Workload != "index" || fp.QPS != 150 || fp.Clients != 8 || fp.Conns != 2 || fp.Records == 0 {
		t.Errorf("fingerprint incomplete: %+v", fp)
	}
	if res.Counts.Offered == 0 || res.Counts.OK == 0 {
		t.Errorf("no load recorded: %+v", res.Counts)
	}
	if res.Latency.P99 <= 0 {
		t.Errorf("no latency distribution: %+v", res.Latency)
	}
	if res.Servers == nil || len(res.Servers.PerServer) != 5 {
		t.Fatalf("selfserve artifact missing the 5 per-server scheduler deltas: %+v", res.Servers)
	}
	if res.Servers.Aggregate.Submitted == 0 {
		t.Errorf("server-side scheduler deltas empty: %+v", res.Servers.Aggregate)
	}
}

// TestGateSaveCompareRefuse: -save cuts a baseline, an identical profile
// passes the gate, and a profile with a different fingerprint is refused
// (exit 1), not silently compared.
func TestGateSaveCompareRefuse(t *testing.T) {
	base := filepath.Join(t.TempDir(), "BENCH_loadgen.json")

	var stderr bytes.Buffer
	if code := run(shortProfile("-json", "-save", base), &bytes.Buffer{}, &stderr); code != 0 {
		t.Fatalf("save run exit %d: %s", code, stderr.String())
	}

	// Same profile, generous threshold: the gate must pass.
	stderr.Reset()
	if code := run(shortProfile("-json", "-baseline", base, "-threshold", "10000"), &bytes.Buffer{}, &stderr); code != 0 {
		t.Fatalf("same-profile gate failed (exit %d): %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "verdict: ok") {
		t.Errorf("gate report missing verdict: %s", stderr.String())
	}

	// Different fingerprint (different QPS): the gate must refuse.
	stderr.Reset()
	if code := run(shortProfile("-json", "-baseline", base, "-qps", "275"), &bytes.Buffer{}, &stderr); code != 1 {
		t.Fatalf("fingerprint mismatch exited %d, want 1: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fingerprint") {
		t.Errorf("refusal did not name the fingerprint: %s", stderr.String())
	}
}

func TestBadInvocations(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-workload", "nonsense", "-selfserve"}, &out, &errOut); code != 2 {
		t.Errorf("unknown workload exited %d, want 2", code)
	}
	if code := run([]string{"-qps", "100"}, &out, &errOut); code != 2 {
		t.Errorf("missing deployment exited %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
}
