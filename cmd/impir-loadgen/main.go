// Command impir-loadgen drives open-loop load into a live IM-PIR
// deployment and reports offered load, latency quantiles, failure
// accounting, and — when it runs the servers itself — the servers'
// scheduler deltas, all in one JSON artifact.
//
// Usage:
//
//	impir-loadgen -deployment deployment.json -qps 500 -duration 30s
//	impir-loadgen -selfserve -qps 200 -workload mixed -json
//	impir-loadgen -selfserve -ramp -slo-p99 50ms        # find the knee
//	impir-loadgen -selfserve ... -save BENCH_loadgen.json
//	impir-loadgen -selfserve ... -baseline BENCH_loadgen.json -threshold 25
//
// The generator is open-loop: the arrival schedule never slows down for
// a struggling server, and latency is measured from each request's
// scheduled due time (no coordinated omission). -selfserve spins up a
// deterministic 2-shard replicated deployment in-process over loopback
// TCP — the profile the CI perf gate runs — so the artifact can include
// server-side scheduler deltas no wire protocol exposes.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/impir/impir"
	"github.com/impir/impir/internal/keyword"
	"github.com/impir/impir/internal/loadgen"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("impir-loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var (
		deployPath = fs.String("deployment", "", "deployment.json of the system under test")
		selfserve  = fs.Bool("selfserve", false, "serve a deterministic 2-shard replicated deployment in-process over loopback TCP (enables server-side scheduler deltas)")
		records    = fs.Int("records", 4096, "selfserve: database records")
		engine     = fs.String("engine", "cpu", "selfserve: engine (pim, cpu, gpu)")
		queueDepth = fs.Int("queue-depth", 0, "selfserve: scheduler admission queue bound (0 = server default)")

		qps      = fs.Float64("qps", 200, "offered open-loop arrival rate")
		duration = fs.Duration("duration", 10*time.Second, "measured window")
		warmup   = fs.Duration("warmup", 2*time.Second, "warmup window, discarded from measurement")
		interval = fs.Duration("interval", 5*time.Second, "progress report cadence (0 disables)")
		clients  = fs.Int("clients", 64, "simulated client population")
		workers  = fs.Int("workers", 0, "in-flight operation bound (0 = 2×GOMAXPROCS, min 32)")
		batch    = fs.Int("batch", 1, "queries per operation (RetrieveBatch/GetBatch above 1)")
		workload = fs.String("workload", "index", "workload: index, keyword, mixed, or batch (multi-record RetrieveBatch; batch defaults to 8)")
		conns    = fs.Int("conns", 8, "parallel connection pools for the client population (one wire connection carries one request at a time)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-operation deadline (0 = none)")
		seed     = fs.Int64("seed", 1, "operation stream seed")
		keysPath = fs.String("keys", "", "keyword corpus file, one key per line (remote keyword workloads)")
		traceSample = fs.Float64("trace-sample", 0,
			"client-side trace sample rate in [0,1]; sampled span trees are summarised into the run artifact (0 = tracing off, no overhead)")

		ramp        = fs.Bool("ramp", false, "saturation search: ramp QPS from -qps until the SLO breaks, then measure at the knee")
		rampMax     = fs.Float64("ramp-max", 0, "ramp ceiling (0 = 64×start)")
		rampFactor  = fs.Float64("ramp-factor", 1.5, "ramp step multiplier")
		rampStep    = fs.Duration("ramp-step", 3*time.Second, "measured window per ramp step")
		sloP99      = fs.Duration("slo-p99", 0, "ramp SLO: max p99 latency (0 = unchecked)")
		sloFailures = fs.Float64("slo-failures", 0.01, "ramp SLO: max failure fraction of offered load")

		baselinePath = fs.String("baseline", "", "perf gate: compare the run against this committed baseline")
		threshold    = fs.Float64("threshold", 25, "perf gate: allowed regression percent per metric")
		savePath     = fs.String("save", "", "write the run as a new baseline to this path")
		note         = fs.String("note", "", "provenance note stored in a saved baseline")
		jsonOut      = fs.Bool("json", false, "write the run artifact as JSON to stdout (progress goes to stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	wl, err := loadgen.ParseWorkload(*workload)
	if err != nil {
		fmt.Fprintln(stderr, "impir-loadgen:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Resolve the system under test.
	var (
		d         impir.Deployment
		topology  string
		keys      [][]byte
		srvStats  func() []metrics.SchedulerStats
		srvScrape func() ([]map[string]float64, error)
	)
	switch {
	case *selfserve:
		ss, err := buildSelfserve(*records, *engine, *queueDepth, *seed, wl != loadgen.WorkloadIndex)
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
		defer ss.close()
		d, topology, keys, srvStats = ss.deployment, ss.topology, ss.keys, ss.stats
		srvScrape = ss.scrape
	case *deployPath != "":
		d, err = impir.LoadDeployment(*deployPath)
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
		topology = fmt.Sprintf("%s: %d shards", *deployPath, d.NumShards())
		if keys, err = loadKeys(*keysPath); err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "impir-loadgen: need -deployment deployment.json or -selfserve")
		return 2
	}

	// The client population's connection pool: one wire connection
	// serves one request at a time, so parallel pools are what let the
	// offered load actually reach the servers concurrently.
	if *conns < 1 {
		*conns = 1
	}
	// One tracer shared across the pools: every pool's sampled trees
	// land in the same ring, which the artifact summarises at the end.
	var tracer *impir.Tracer
	var clientOpts []impir.ClientOption
	if *traceSample > 0 {
		tracer = impir.NewTracer(impir.TracerConfig{SampleRate: *traceSample})
		clientOpts = append(clientOpts, tracer.Option())
	}
	target := loadgen.Target{Keys: keys}
	for i := 0; i < *conns; i++ {
		store, err := impir.Open(ctx, d, clientOpts...)
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen: open:", err)
			return 1
		}
		defer store.Close()
		target.PerClient = append(target.PerClient, store)
		if wl != loadgen.WorkloadIndex {
			kv, err := impir.OpenKV(ctx, d, clientOpts...)
			if err != nil {
				fmt.Fprintln(stderr, "impir-loadgen: open keyword view:", err)
				return 1
			}
			defer kv.Close()
			target.PerClientKV = append(target.PerClientKV, kv)
		}
	}
	target.Store = target.PerClient[0]

	cfg := loadgen.Config{
		QPS:         *qps,
		Duration:    *duration,
		Warmup:      *warmup,
		Clients:     *clients,
		Workers:     *workers,
		Batch:       *batch,
		Workload:    wl,
		Interval:    *interval,
		Timeout:     *timeout,
		Seed:        *seed,
		Topology:    topology,
		ServerStats: srvStats,
		Scrape:      srvScrape,
	}
	if *interval > 0 {
		cfg.OnInterval = func(iv loadgen.Interval) { fmt.Fprintln(stderr, iv.Format()) }
	}

	var res *loadgen.Result
	if *ramp {
		rr, err := loadgen.Saturate(ctx, target, cfg, loadgen.RampConfig{
			StartQPS:   *qps,
			MaxQPS:     *rampMax,
			StepFactor: *rampFactor,
			StepDuration: *rampStep,
			SLO:        loadgen.SLO{MaxP99: *sloP99, MaxFailureRate: *sloFailures},
		})
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen: ramp:", err)
			return 1
		}
		if rr.MaxGoodQPS > 0 {
			// Full measured run at the knee, with the search attached.
			cfg.QPS = rr.MaxGoodQPS
			res, err = loadgen.Run(ctx, target, cfg)
			if err != nil {
				fmt.Fprintln(stderr, "impir-loadgen:", err)
				return 1
			}
		} else {
			res = &loadgen.Result{Schema: loadgen.ResultSchema}
		}
		res.Ramp = rr
	} else {
		res, err = loadgen.Run(ctx, target, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
	}

	if tracer != nil {
		res.Traces = traceSummaries(tracer.RecentTraces(0))
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
	} else {
		res.PrintHuman(stdout)
	}

	if *savePath != "" {
		if err := loadgen.NewBaseline(res, *note).Save(*savePath); err != nil {
			fmt.Fprintln(stderr, "impir-loadgen: save baseline:", err)
			return 1
		}
		fmt.Fprintf(stderr, "impir-loadgen: baseline saved to %s\n", *savePath)
	}
	if *baselinePath != "" {
		base, err := loadgen.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
		cmp, err := loadgen.Compare(base, res, *threshold)
		if err != nil {
			fmt.Fprintln(stderr, "impir-loadgen:", err)
			return 1
		}
		fmt.Fprint(stderr, cmp.String())
		if cmp.Regressed {
			return 1
		}
	}
	return 0
}

// selfserveDeployment is an in-process 2-shard replicated topology over
// real loopback TCP: shard 0's party 0 runs two replicas (a hedging
// target), every other party one — five servers total. Deterministic by
// construction so the CI perf gate always measures the same system.
type selfserveDeployment struct {
	deployment impir.Deployment
	topology   string
	keys       [][]byte
	servers    []*impir.Server
	// adminAddrs are the servers' admin endpoints (one per server, in
	// servers order) — the scrape half of the exporter cross-check.
	adminAddrs []string
}

func buildSelfserve(records int, engineName string, queueDepth int, seed int64, withKV bool) (*selfserveDeployment, error) {
	var eng impir.EngineKind
	switch engineName {
	case "pim":
		eng = impir.EnginePIM
	case "cpu":
		eng = impir.EngineCPU
	case "gpu":
		eng = impir.EngineGPU
	default:
		return nil, fmt.Errorf("unknown engine %q (want pim, cpu, or gpu)", engineName)
	}

	ss := &selfserveDeployment{}
	var db *impir.DB
	var kvm impir.KVManifest
	var err error
	if withKV {
		pairs := keyword.GeneratePairs(records, seed)
		db, kvm, err = impir.BuildKVDB(pairs, impir.KVTableOptions{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("build keyword table: %w", err)
		}
		ss.keys = make([][]byte, len(pairs))
		for i, p := range pairs {
			ss.keys[i] = p.Key
		}
	} else {
		db, err = impir.GenerateHashDB(records, seed)
		if err != nil {
			return nil, err
		}
	}

	parts, err := impir.SplitDB(db, 2)
	if err != nil {
		return nil, err
	}
	serve := func(part *impir.DB, party uint8) (string, error) {
		srv, err := impir.NewServer(impir.ServerConfig{Engine: eng, QueueDepth: queueDepth})
		if err != nil {
			return "", err
		}
		if err := srv.Load(part); err != nil {
			srv.Close()
			return "", err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return "", err
		}
		if err := srv.Serve(lis, party); err != nil {
			srv.Close()
			return "", err
		}
		// Each server gets its own loopback admin endpoint so the run
		// can scrape /metrics and cross-check it against QueueStats().
		alis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return "", err
		}
		go srv.ServeAdmin(alis) // returns when the server shuts down
		ss.adminAddrs = append(ss.adminAddrs, alis.Addr().String())
		ss.servers = append(ss.servers, srv)
		return srv.Addr().String(), nil
	}

	var shards []impir.DeploymentShard
	first := uint64(0)
	for s, part := range parts {
		var parties []impir.Party
		for party := 0; party < 2; party++ {
			replicas := 1
			if s == 0 && party == 0 {
				replicas = 2 // hedging target
			}
			var addrs []string
			for r := 0; r < replicas; r++ {
				addr, err := serve(part, uint8(party))
				if err != nil {
					ss.close()
					return nil, err
				}
				addrs = append(addrs, addr)
			}
			parties = append(parties, impir.Party{Replicas: addrs})
		}
		shards = append(shards, impir.DeploymentShard{
			FirstRecord: first,
			NumRecords:  uint64(part.NumRecords()),
			Parties:     parties,
		})
		first += uint64(part.NumRecords())
	}
	ss.deployment = impir.Deployment{RecordSize: db.RecordSize(), Shards: shards}
	if withKV {
		ss.deployment = ss.deployment.WithKeyword(kvm)
	}
	ss.topology = fmt.Sprintf("selfserve/%s: 2 shards × 2 parties, %d servers", engineName, len(ss.servers))
	return ss, nil
}

func (ss *selfserveDeployment) close() {
	for _, srv := range ss.servers {
		srv.Close()
	}
}

// stats polls every selfserve server's scheduler snapshot in a fixed
// order, so interval and window deltas line up server by server.
func (ss *selfserveDeployment) stats() []metrics.SchedulerStats {
	out := make([]metrics.SchedulerStats, len(ss.servers))
	for i, srv := range ss.servers {
		out[i] = srv.QueueStats()
	}
	return out
}

// scrape fetches every server's /metrics over real HTTP — through the
// same path an external Prometheus would use — and parses the text
// exposition into samples, in the same order as stats.
func (ss *selfserveDeployment) scrape() ([]map[string]float64, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	out := make([]map[string]float64, len(ss.adminAddrs))
	for i, addr := range ss.adminAddrs {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", addr, err)
		}
		samples, perr := obs.ParseText(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scrape %s: HTTP %d", addr, resp.StatusCode)
		}
		if perr != nil {
			return nil, fmt.Errorf("scrape %s: %w", addr, perr)
		}
		out[i] = samples
	}
	return out, nil
}

// traceSummaries condenses the tracer's sampled span trees into the
// artifact's flat summary form: op, duration, tree width, error.
func traceSummaries(snaps []impir.TraceSnapshot) []loadgen.TraceSummary {
	var count func(impir.TraceSnapshot) int
	count = func(sn impir.TraceSnapshot) int {
		n := 1
		for _, c := range sn.Children {
			n += count(c)
		}
		return n
	}
	out := make([]loadgen.TraceSummary, 0, len(snaps))
	for _, sn := range snaps {
		errAttr, _ := sn.Attr("error")
		out = append(out, loadgen.TraceSummary{
			TraceID: sn.TraceID,
			Op:      sn.Name,
			DurUS:   sn.DurUS,
			Spans:   count(sn),
			Error:   errAttr,
		})
	}
	return out
}

// loadKeys reads a keyword corpus file: one key per line, blank lines
// skipped.
func loadKeys(path string) ([][]byte, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var keys [][]byte
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := sc.Bytes(); len(line) > 0 {
			keys = append(keys, append([]byte(nil), line...))
		}
	}
	return keys, sc.Err()
}
