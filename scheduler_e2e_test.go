package impir

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/impir/impir/internal/bitvec"
	"github.com/impir/impir/internal/cpupir"
	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/scheduler"
	"github.com/impir/impir/internal/transport"
)

// startShimDeployment serves db through a shimEngine behind a scheduler
// with the given config, over loopback TCP, and returns the address plus
// the scheduler for stats inspection.
func startShimDeployment(t *testing.T, db *database.DB, delay time.Duration,
	cfg scheduler.Config) (string, *scheduler.Scheduler) {
	t.Helper()
	eng, err := cpupir.New(cpupir.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadDatabase(db); err != nil {
		t.Fatal(err)
	}
	sched := scheduler.New(&shimEngine{Engine: eng, delay: delay}, cfg)
	t.Cleanup(func() { sched.Close() })
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(lis, sched, 0, transport.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String(), sched
}

// runConcurrentClients opens one TCP connection per client and has each
// issue `queries` sequential single queries; it returns the makespan.
func runConcurrentClients(t *testing.T, addr string, db *database.DB, clients, queries int) time.Duration {
	t.Helper()
	ctx := context.Background()
	conns := make([]*transport.Conn, clients)
	for i := range conns {
		conn, err := transport.Dial(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}

	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				idx := uint64((c*queries + q) % db.NumRecords())
				k0, _, err := GenerateKeys(db.NumRecords(), idx)
				if err != nil {
					errs[c] = err
					return
				}
				if _, err := conns[c].Query(ctx, k0); err != nil {
					errs[c] = fmt.Errorf("client %d query %d: %w", c, q, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return elapsed
}

// TestCoalescingBeatsSerialOverTCP is the acceptance-criterion
// throughput test: K concurrent single-query clients against one server
// complete measurably faster with a coalescing window than with the
// window set to zero. The shim engine charges a fixed cost per solo
// query pass, so without coalescing K clients pay K serial passes, while
// the coalescing window folds concurrent queries into shared batch
// passes.
func TestCoalescingBeatsSerialOverTCP(t *testing.T) {
	db, err := GenerateHashDB(256, 17)
	if err != nil {
		t.Fatal(err)
	}
	const (
		clients = 8
		queries = 4
		delay   = 25 * time.Millisecond
	)

	serialAddr, serialSched := startShimDeployment(t, db, delay, scheduler.Config{})
	serialTime := runConcurrentClients(t, serialAddr, db, clients, queries)
	if stats := serialSched.Stats(); stats.CoalescedQueries != 0 {
		t.Fatalf("window=0 server coalesced queries: %+v", stats)
	}

	coalAddr, coalSched := startShimDeployment(t, db, delay,
		scheduler.Config{CoalesceWindow: 10 * time.Millisecond})
	coalescedTime := runConcurrentClients(t, coalAddr, db, clients, queries)
	stats := coalSched.Stats()
	if stats.CoalescedQueries == 0 {
		t.Fatalf("coalescing server merged nothing under %d concurrent clients: %+v", clients, stats)
	}

	t.Logf("serial: %v, coalesced: %v (%.1f queries/pass, avg wait %v)",
		serialTime, coalescedTime, stats.AvgCoalesce(), stats.AvgWait())
	// Serial is ≥ clients*queries*delay ≈ 800ms; coalesced folds each
	// concurrent wave into few passes. 2× is a conservative margin for a
	// loaded CI machine.
	if coalescedTime >= serialTime/2 {
		t.Fatalf("coalescing did not pay: serial %v vs coalesced %v", serialTime, coalescedTime)
	}
}

// TestUpdateUnderConcurrentQueryLoad is the §3.3-meets-scheduler torn
// read test: many goroutines continuously read one record over TCP (via
// one-hot selector shares, so a single server returns the record in one
// pass) while Update concurrently flips that record between two full
// patterns. Every observed value must be entirely the old or entirely
// the new pattern — never a mix.
func TestUpdateUnderConcurrentQueryLoad(t *testing.T) {
	db, err := GenerateHashDB(256, 23)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Engine: EnginePIM, DPUs: 8, Tasklets: 4, EvalWorkers: 2,
		QueueDepth: 1024, CoalesceWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.Load(db); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(lis, 0); err != nil {
		t.Fatal(err)
	}

	const (
		target  = 42
		readers = 8
	)
	recordSize := srv.Database().RecordSize()
	patA := bytes.Repeat([]byte{0xAA}, recordSize)
	patB := bytes.Repeat([]byte{0xBB}, recordSize)
	if err := srv.Update(map[uint64][]byte{target: patA}); err != nil {
		t.Fatal(err)
	}

	onehot := bitvec.New(srv.Database().NumRecords())
	onehot.Set(target)

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var torn [][]byte
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := transport.Dial(ctx, lis.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, err := conn.QueryShare(ctx, onehot)
				if errors.Is(err, ErrServerBusy) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(rec, patA) && !bytes.Equal(rec, patB) {
					mu.Lock()
					torn = append(torn, rec)
					mu.Unlock()
				}
			}
		}()
	}

	// Wait until queries are actually flowing, then hammer updates while
	// the readers run: A→B→A→…, pacing so queries interleave with them.
	for deadline := time.Now().Add(10 * time.Second); srv.QueueStats().Dispatched == 0; {
		if time.Now().After(deadline) {
			t.Fatal("readers never got a query through")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		pat := patA
		if i%2 == 0 {
			pat = patB
		}
		if err := srv.Update(map[uint64][]byte{target: pat}); err != nil {
			t.Fatalf("update %d under query load: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if len(torn) > 0 {
		t.Fatalf("%d torn reads; first: %x", len(torn), torn[0][:8])
	}
	stats := srv.QueueStats()
	if stats.Updates != 21 || stats.Epoch != 21 {
		t.Errorf("updates=%d epoch=%d, want 21", stats.Updates, stats.Epoch)
	}
	if stats.Dispatched == 0 {
		t.Error("no queries dispatched during the update storm")
	}
}

// TestQueueFullReturnsBusyOverTCP: with a 1-deep queue and a slow
// engine, extra concurrent clients must bounce with ErrServerBusy
// promptly instead of queueing behind the TCP accept loop.
func TestQueueFullReturnsBusyOverTCP(t *testing.T) {
	db, err := GenerateHashDB(128, 29)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startShimDeployment(t, db, 400*time.Millisecond, scheduler.Config{QueueDepth: 1})

	const clients = 6
	ctx := context.Background()
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := transport.Dial(ctx, addr)
			if err != nil {
				outcomes[c].err = err
				return
			}
			defer conn.Close()
			k0, _, err := GenerateKeys(db.NumRecords(), uint64(c))
			if err != nil {
				outcomes[c].err = err
				return
			}
			start := time.Now()
			_, err = conn.Query(ctx, k0)
			outcomes[c] = outcome{err: err, elapsed: time.Since(start)}
		}(c)
	}
	wg.Wait()

	var busy, ok int
	for c, o := range outcomes {
		switch {
		case o.err == nil:
			ok++
		case errors.Is(o.err, ErrServerBusy):
			busy++
			// A busy rejection must not wait for the slow engine pass.
			if o.elapsed >= 400*time.Millisecond {
				t.Errorf("client %d: busy rejection took %v — it queued", c, o.elapsed)
			}
		default:
			t.Errorf("client %d: unexpected error %v", c, o.err)
		}
	}
	if busy == 0 {
		t.Fatalf("no client was rejected busy (%d ok) despite a 1-deep queue", ok)
	}
	if ok == 0 {
		t.Fatal("every client was rejected — the queue admitted nothing")
	}
	t.Logf("%d served, %d busy", ok, busy)
}
