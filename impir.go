// Package impir is a Go implementation of IM-PIR — in-memory private
// information retrieval (Mwaisela et al., MIDDLEWARE 2025) — together
// with the complete stack it builds on: a tree-based distributed point
// function (DPF), a functional UPMEM processing-in-memory simulator with
// a calibrated timing model, CPU and GPU baseline engines, a Paillier
// single-server PIR for comparison, and a TCP transport for two-server
// deployments.
//
// # Protocol
//
// Two-server PIR: a public database D of N fixed-size records is
// replicated on two non-colluding servers. To fetch D[i] privately, the
// client generates a DPF key pair with GenerateKeys — two keys that
// secret-share the one-hot indicator of i — and sends one key to each
// server. Each server expands its key over the full index space and XORs
// together the records whose share bit is set (the dpXOR scan, offloaded
// to PIM DPUs by the IM-PIR engine). The client XORs the two subresults
// with Reconstruct to obtain D[i]. Neither server learns anything about
// i, and each server's work is a linear scan regardless of the query —
// the "all-for-one" principle that makes PIR memory-bound and PIM a
// natural fit.
//
// # Quick start
//
// The protocol in one process, through the low-level primitives:
//
//	ctx := context.Background()
//	db, _ := impir.GenerateHashDB(1<<12, 1) // 4096 random 32-byte records
//	s0, _ := impir.NewServer(impir.ServerConfig{})
//	s1, _ := impir.NewServer(impir.ServerConfig{})
//	s0.Load(db)
//	s1.Load(db)
//	k0, k1, _ := impir.GenerateKeys(db.NumRecords(), 42)
//	r0, _, _ := s0.Answer(ctx, k0)
//	r1, _, _ := s1.Answer(ctx, k1)
//	record, _ := impir.Reconstruct(r0, r1) // == db.Record(42)
//
// # Unified Store API
//
// Network deployments go through one entry point: Open, over a unified
// deployment manifest (deployment.json), returns a Store — Retrieve,
// RetrieveBatch, Update, Stats, Close — whatever topology the manifest
// describes. The manifest composes every deployment dimension:
//
//	Deployment (deployment.json)
//	└── Shards        contiguous row ranges tiling the record space
//	    └── Parties   ≥ 2 mutually NON-COLLUDING query recipients;
//	        │         each receives exactly one share per query
//	        └── Replicas  ≥ 1 interchangeable servers of ONE party —
//	                      identical data, hedging/failover targets
//	└── Keyword       optional cuckoo key→value table over the records
//
//	d, _ := impir.LoadDeployment("deployment.json")
//	store, _ := impir.Open(ctx, d)
//	defer store.Close()
//	record, _ := store.Retrieve(ctx, 42)
//
// A single-shard deployment opens as *Client, a multi-shard one as
// *ClusterClient, and OpenKV returns the key→value view when the
// manifest carries a keyword table. Queries encode under a pluggable
// Encoding (DPF key pairs for two parties, naive §2.3 selector shares
// for n — selected automatically, or forced with WithEncoding) and fan
// out to all parties in parallel, so retrieval latency is the slowest
// party rather than the sum. Contexts bound and cancel every network
// operation. The historical Dial/DialCluster/DialKV/DialKVCluster
// entry points survive as deprecated wrappers over Open.
//
// Open installs store-level policy that every call may override:
// WithCallTimeout bounds a whole operation, WithRetries grants a
// transient-failure budget whose attempts transparently redial
// poisoned connections, and WithHedging/WithHedgeDelay control hedged
// replica fan-out. WithUnaryInterceptor and WithBatchInterceptor
// install a gRPC-style interceptor chain — logging, metrics, tracing,
// caching — running once per logical operation, however many shards,
// replicas, hedges and retries it spans.
//
// # Hedged replica fan-out
//
// A party may run several interchangeable replicas. Each query share
// goes to the party's fastest-known replica (EWMA-ordered); when the
// primary lags past the hedge delay — adapted upward to 2× its usual
// latency — or fails outright, the SAME share goes to the party's next
// replica, the first valid answer wins, and the losers are cancelled.
// Tail stalls (a GC pause, CPU contention, an update quiesce) are
// thereby evicted from the critical path: p99 collapses toward p50
// while healthy-path traffic is unchanged (impir-bench -experiment
// hedging prices this). A replica that dies degrades its party to the
// survivors instead of taking retrievals down; updates still require
// every replica, so a dead replica can never silently serve stale
// records as current.
//
// Privacy argument: all replicas of one party form ONE trust domain
// holding identical data, and a hedged attempt carries exactly the
// share that party was sent anyway — anything its replicas observe,
// the party could assemble regardless — so hedging cuts tail latency
// without adding leakage. The manifest's party/replica distinction is
// the privacy boundary: never list a server under a party it does not
// trust, as that would hand two shares of the same query to one
// operator.
//
// # Server-side scheduling
//
// Every Server runs its engine behind a request scheduler: a bounded
// admission queue (overflow is rejected with ErrServerBusy — a MsgBusy
// frame on the wire — instead of unbounded queueing), an optional
// coalescing window that merges concurrent single queries from
// different clients into one §3.4 batch-pipeline pass, and epoch-based
// quiescing that makes Update safe under live query load. See
// ServerConfig's QueueDepth, CoalesceWindow and MaxCoalesce, and
// Server.QueueStats for the observed queue behaviour.
//
// # Operability
//
// Server.ServeAdmin serves an operator plane on its own listener,
// separate from the binary query protocol: /metrics is a Prometheus
// text exposition (stdlib-only registry — per-frame request counters,
// per-stage latency histograms, scheduler counters mirrored at scrape
// time so they can never disagree with QueueStats, database gauges),
// /healthz reports the process up, and /readyz reports 200 only while
// the database is loaded, the query listener accepts, and no update
// quiesce or drain is underway. ServerConfig.SlowQueryThreshold logs a
// structured one-line trace (frame, shard, queue wait, engine pass,
// coalesce width, fused flag, per-phase breakdown) for every dispatch
// crossing it. On the client, NewClientObs packages the interceptor
// chain into per-call latency/outcome metrics plus retry/hedge mirrors,
// scrapeable or snapshotable. Everything exported is an operational
// aggregate: indices' timing, never their values.
//
// # Distributed tracing
//
// NewTracer adds the per-query half: a head-sampled root span per
// logical operation, child spans for every shard sub-query, party, and
// replica attempt (hedge delay, winner/loser, loser cancellation), and
// a ring buffer of finished span trees (Tracer.RecentTraces, or
// mounted as an HTTP handler). Servers keep their own ring — queue
// wait, engine pass, per-phase breakdown — served as JSON at the admin
// endpoint's /debug/traces?min_ms=N, populated by client-sampled
// queries, ServerConfig.TraceSampleRate, and everything over the
// slow-query threshold. ServerConfig.EnablePprof additionally mounts
// net/http/pprof under /debug/pprof/ (off by default).
//
// Privacy argument: tracing must not weaken the non-collusion model,
// so NO SHARED TRACE ID EVER CROSSES A PARTY BOUNDARY. The wire trace
// context a server receives is the span ID of that one replica
// attempt, drawn independently at random per attempt — two parties
// (indeed two replicas) never receive the same ID, and because the IDs
// are independent uniform draws, colluding servers comparing their
// contexts learn nothing about whether two queries belong to the same
// operation beyond the arrival timing they already observe. The
// linkage lives only client-side: the client's span tree records each
// attempt's ID, which equals the trace_id of exactly that server's
// ring entry, so the operator of the CLIENT can join the halves while
// the servers cannot. Shard dummy marking (dummy=true on non-owner
// sub-queries) and keyword probe counts exist only in client-side
// spans and never go on the wire; the wire bytes of a traced query
// differ from an untraced one only by the negotiated version-2
// extension, and untraced queries are byte-identical to the legacy
// protocol.
//
// # Batched execution
//
// A batch pass — a client's explicit RetrieveBatch, or single queries
// the scheduler coalesced across connections — executes FUSED in every
// engine: all B selector shares are expanded first, then the database
// streams through the scan hardware once while B XOR accumulators fill
// in parallel. One pass's memory traffic serves the whole batch, so in
// the memory-bound regime the per-query dpXOR cost falls toward 1/B of
// a solo scan (on the PIM engine, each MRAM chunk crosses the DMA bus
// once per pass instead of once per query; `impir-bench -experiment
// batchfuse` measures the slope). SchedulerStats.FusedPasses counts the
// passes that took the fused path.
//
// Privacy argument: fusion changes only the order in which the server
// combines work it was already sent. Each query in the fused pass
// contributes exactly the selector share the server would have received
// and expanded anyway; every share still touches every record (the
// all-for-one scan), the per-query subresults are computed and returned
// individually, and no cross-query state outlives the pass. A server
// that fuses observes precisely what a server that loops observes, so
// batching leaks nothing beyond what the unbatched protocol already
// reveals — the arrival times and count of the queries, which the
// coalescing window exposed regardless. Choosing between sharding
// (split the scan), coalescing (share the pass across clients) and
// fusion (share the memory traffic within a pass): they compose —
// shards bound single-query latency, coalescing fills passes under
// concurrent load, and fusion makes wide passes nearly free until the
// scan turns ALU-bound.
//
// # Sharded deployments
//
// A single server pair caps out at one machine's memory bandwidth —
// all-for-one means every query scans the whole replica. To scale
// across machines, carve the database into contiguous row-range shards
// with SplitDB (or SplitDBByManifest), serve each shard from its own
// cohort of ≥ 2 non-colluding replicas, and describe the topology in a
// ShardManifest (JSON round-trip via ParseManifest/LoadManifest for
// flags and config files). DialCluster then connects a ClusterClient to
// every cohort:
//
//	parts, _ := impir.SplitDB(db, 4)            // per-cohort replicas
//	m, _ := impir.LoadManifest("cluster.json")  // topology
//	cc, _ := impir.DialCluster(ctx, m)
//	record, _ := cc.Retrieve(ctx, 123456)       // global index
//
// Privacy argument: every retrieval sends one well-formed sub-query to
// EVERY cohort — the real local index to the owning shard, a random
// dummy to each other shard — and a PIR query reveals nothing about its
// index, so no cohort can tell whether it owned the record; batched
// retrievals send equal-length batches to every cohort so even the
// batch shape leaks nothing. Per-shard scan work and memory fall by the
// shard factor while retrieval latency is the slowest cohort's round
// trip. ClusterClient.Update routes each dirty row to its owning cohort
// only (updates are public operator actions), riding the per-server
// epoch quiescing; servers accept wire updates only when started with
// ServerConfig.AllowWireUpdates, since the query port serves untrusted
// clients.
//
// Shard when one box's memory bandwidth is the bottleneck (scan-bound,
// large databases); prefer the scheduler's cross-client coalescing when
// the bottleneck is query arrival rate on a database that still fits
// one box — coalescing amortises one scan across clients, sharding
// splits the scan itself, and the two compose.
//
// # Keyword retrieval
//
// Index-PIR answers "record i"; real workloads ask "the value for key
// K". Publishing a key→index directory to bridge the gap defeats the
// purpose: the directory grows with the corpus, must be re-shipped on
// every update, and hands the full corpus fingerprint to every client.
// The keyword layer stores pairs in a deterministic seeded k-ary
// cuckoo hash table instead — each key lives in one of k candidate
// buckets derived from public hash seeds, overflow spills into a
// small constant-size stash of tail buckets — serialised into an
// ordinary DB (one bucket = one record), built with BuildKVDB and
// described by a KVManifest:
//
//	db, manifest, _ := impir.BuildKVDB(pairs, impir.KVTableOptions{})
//	// … load db into ≥ 2 replicas, serve …
//	kv, _ := impir.DialKV(ctx, addrs, manifest)
//	value, err := kv.Get(ctx, key) // ErrNotFound when absent
//
// Privacy argument: every lookup retrieves the key's k candidate
// buckets plus the whole stash in one RetrieveBatch. The probe count
// k+S is a public constant of the manifest — independent of the key
// bytes and of whether the key is present — and each PIR sub-query
// hides which bucket it read, so the servers learn neither the key
// nor hit/miss; a Get that returns ErrNotFound produced byte-identical
// wire traffic to a hit. GetBatch fetches n keys as n·k candidate
// probes plus one shared stash scan, again a shape fixed by public
// parameters alone. Put and Delete probe with the same constant shape
// and then rewrite the one affected bucket via the wire-update path
// (public operator actions, like all updates). DialKVCluster runs the
// identical probes through a ClusterClient for sharded keyword stores.
//
// # Multi-message batches
//
// Fusion amortises the scan across a batch, but every server still
// evaluates B selectors per B-record RetrieveBatch, and every cohort
// of a sharded deployment still receives B sub-queries. The
// probabilistic batch code removes that linear factor: each logical
// record is hashed (public seeds, like the keyword table) into r of C
// candidate buckets, the servers load the coded database — C bucket
// subdatabases plus a few overflow slots, concatenated —
//
//	logical record i ── h_1(i), …, h_r(i) ──► r of the C buckets
//	coded DB = bucket_0 ‖ bucket_1 ‖ … ‖ bucket_{C-1} ‖ overflow
//
// and the client plans a batch as a matching of records onto distinct
// buckets (two-choice hashing makes up to max_batch records match with
// overwhelming probability). Every batch then costs a CONSTANT
// C+overflow sub-queries — a real coded row where the matching placed
// a record, a uniformly random row of the slot's bucket everywhere
// else — so on a bucket-aligned sharded deployment each cohort
// receives exactly C/shards+overflow sub-queries however large the
// batch. A deployment opts in by carrying a batch_code section
// (Deployment.WithBatchCode; derive the manifest with DeriveBatchCode
// and load EncodeBatchCode's output on the servers), and Open wraps
// the topology client in a CodedStore. Servers need no protocol
// change: coded sub-queries are ordinary PIR queries over the coded
// row space. Keyword lookups ride the same planner — a KVClient.Get
// over a coded deployment issues its k+S probes as one coded batch.
//
// WithSideInfoCache adds a client-side LRU of retrieved records whose
// hits are SPENT, not skipped: a slot whose record the cache already
// holds still carries a uniform dummy query, so an all-hits batch is
// byte-identical on the wire to an all-misses batch.
//
// Privacy argument: the coded query shape — slot count, order, and
// each slot's index domain — is a function of the public manifest
// alone, never of the batch's size, content, or cache state. Each
// sub-query is an ordinary PIR query whose index no server learns;
// dummies are uniform over the same domain as real rows; which slots
// were real, dummy, or cache-satisfied exists only client-side. The
// manifest (geometry and hash seeds) and the max_batch cap are public,
// and the rare matching-overflow fallback re-exposes only the uncoded
// B-query shape every deployment already has (counted in
// StoreStats.CodeFallbacks).
//
// See the examples/ directory for runnable programs, including network
// deployments over TCP, live updates under load, a sharded deployment
// (examples/sharded), and directory-free keyword workloads
// (examples/credcheck, examples/blocklist).
package impir

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/impir/impir/internal/database"
	"github.com/impir/impir/internal/dpf"
	"github.com/impir/impir/internal/metrics"
	"github.com/impir/impir/internal/xorop"
)

// Key is one party's DPF query key. Keys are generated in pairs by
// GenerateKeys; each key individually reveals nothing about the queried
// index. Keys implement encoding.BinaryMarshaler/Unmarshaler for
// transmission.
type Key = dpf.Key

// DB is a PIR database: N fixed-size records replicated across servers.
type DB = database.DB

// Breakdown is a per-phase timing report for one query: both measured
// wall-clock and the modeled duration on the paper's hardware.
type Breakdown = metrics.Breakdown

// BatchStats summarises a processed batch (throughput, latency, per-query
// phase breakdown).
type BatchStats = metrics.BatchStats

// CTEntry is a synthetic Certificate Transparency log entry produced by
// GenerateCTLog.
type CTEntry = database.CTEntry

// NewDatabase returns a zero-filled database with the given geometry.
func NewDatabase(numRecords, recordSize int) (*DB, error) {
	return database.New(numRecords, recordSize)
}

// DatabaseFromRecords builds a database from equally sized records.
func DatabaseFromRecords(records [][]byte) (*DB, error) {
	return database.FromRecords(records)
}

// GenerateHashDB synthesises the paper's evaluation workload: numRecords
// pseudorandom 32-byte hash records, deterministic in seed.
func GenerateHashDB(numRecords int, seed int64) (*DB, error) {
	return database.GenerateHashDB(numRecords, seed)
}

// GenerateCTLog synthesises a Certificate Transparency log and its PIR
// database of leaf hashes (the §5.2 CT auditing use case).
func GenerateCTLog(numCerts int, seed int64) (*DB, []CTEntry, error) {
	return database.GenerateCTLog(numCerts, seed)
}

// GenerateCredentialDB synthesises a breached-credential hash database
// (the §5.2 compromised-credential checking use case).
func GenerateCredentialDB(numCreds int, seed int64) (*DB, []string, error) {
	return database.GenerateCredentialDB(numCreds, seed)
}

// GenerateBlocklist synthesises a private-blocklist database of hashed
// malicious URLs.
func GenerateBlocklist(numURLs int, seed int64) (*DB, []string, error) {
	return database.GenerateBlocklist(numURLs, seed)
}

// CredentialHash returns the digest a credential-checking deployment
// stores for one credential.
func CredentialHash(password string) [32]byte {
	return database.CredentialHash(password)
}

// DomainFor returns the DPF tree depth covering a database of numRecords:
// ⌈log₂ numRecords⌉. Keys for a database must be generated at exactly
// this domain; GenerateKeys does so automatically.
func DomainFor(numRecords int) (int, error) {
	if numRecords < 1 {
		return 0, fmt.Errorf("impir: numRecords %d must be ≥ 1", numRecords)
	}
	return bits.Len(uint(numRecords - 1)), nil
}

// GenerateKeys produces the two-server query for index: a DPF key pair
// secret-sharing the one-hot indicator of index over a database of
// numRecords records. Send k0 to server 0 and k1 to server 1; neither
// key alone reveals index.
func GenerateKeys(numRecords int, index uint64) (k0, k1 *Key, err error) {
	domain, err := DomainFor(numRecords)
	if err != nil {
		return nil, nil, err
	}
	if index >= uint64(numRecords) {
		return nil, nil, fmt.Errorf("impir: index %d outside database of %d records", index, numRecords)
	}
	return dpf.Gen(dpf.Params{Domain: domain}, index, nil)
}

// Reconstruct XORs the servers' subresults into the queried record.
// With the standard two-server deployment pass exactly two subresults;
// deployments with more servers pass one per server.
func Reconstruct(subresults ...[]byte) ([]byte, error) {
	if len(subresults) < 2 {
		return nil, errors.New("impir: reconstruction needs at least two subresults")
	}
	out := make([]byte, len(subresults[0]))
	copy(out, subresults[0])
	for i, sub := range subresults[1:] {
		if err := xorop.XORBytes(out, sub); err != nil {
			return nil, fmt.Errorf("impir: subresult %d: %w", i+1, err)
		}
	}
	return out, nil
}
